//! A multi-stripe RAID-6 array: logical byte addressing over many stripes,
//! failure injection, degraded service, and whole-disk rebuild.
//!
//! This is the layer a file system would sit on. Stripes share one
//! [`CodeLayout`]; a [`RotationScheme`] decides which physical disk holds
//! each stripe's logical columns. Reads and writes are addressed in
//! *logical data elements* (`stripe.data_len()` per stripe, `block_size`
//! bytes each); the array serves them correctly whether disks are healthy,
//! failed, or freshly rebuilt.

use crate::rotation::RotationScheme;
use dcode_codec::{apply_plan, encode, write_logical, Stripe};
use dcode_core::decoder::plan_recovery;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;

/// Errors from array operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArrayError {
    /// The byte range falls outside the array.
    OutOfRange {
        /// First logical element requested.
        element: usize,
        /// Array capacity in elements.
        capacity: usize,
    },
    /// More disks have failed than RAID-6 tolerates.
    TooManyFailures {
        /// Currently failed physical disks.
        failed: Vec<usize>,
    },
    /// The target disk is not failed (rebuild) or already failed (fail).
    BadDiskState {
        /// The disk in question.
        disk: usize,
    },
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::OutOfRange { element, capacity } => {
                write!(f, "element {element} outside array capacity {capacity}")
            }
            ArrayError::TooManyFailures { failed } => {
                write!(
                    f,
                    "RAID-6 cannot serve with {} failed disks {failed:?}",
                    failed.len()
                )
            }
            ArrayError::BadDiskState { disk } => write!(f, "disk {disk} is in the wrong state"),
        }
    }
}

impl std::error::Error for ArrayError {}

/// A simulated array of `layout.disks()` disks holding `n_stripes` stripes.
pub struct Array {
    layout: CodeLayout,
    rotation: RotationScheme,
    block_size: usize,
    stripes: Vec<Stripe>,
    failed: BTreeSet<usize>,
}

impl Array {
    /// Create a zero-filled, consistently encoded array.
    pub fn new(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
    ) -> Self {
        assert!(n_stripes > 0);
        let stripes = (0..n_stripes)
            .map(|_| Stripe::zeroed(&layout, block_size))
            .collect();
        Array {
            layout,
            rotation,
            block_size,
            stripes,
            failed: BTreeSet::new(),
        }
    }

    /// The code this array runs.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Logical data capacity in elements.
    pub fn capacity_elements(&self) -> usize {
        self.stripes.len() * self.layout.data_len()
    }

    /// Logical data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_elements() * self.block_size
    }

    /// Physical disks currently failed.
    pub fn failed_disks(&self) -> Vec<usize> {
        self.failed.iter().copied().collect()
    }

    fn locate(&self, element: usize) -> Result<(usize, usize), ArrayError> {
        let capacity = self.capacity_elements();
        if element >= capacity {
            return Err(ArrayError::OutOfRange { element, capacity });
        }
        Ok((
            element / self.layout.data_len(),
            element % self.layout.data_len(),
        ))
    }

    /// The logical columns of stripe `s` that are currently failed.
    fn failed_logical_cols(&self, stripe: usize) -> Vec<usize> {
        self.failed
            .iter()
            .map(|&d| self.rotation.to_logical(stripe, d, self.layout.disks()))
            .collect()
    }

    /// Mark a physical disk failed (its contents become unreadable).
    pub fn fail_disk(&mut self, disk: usize) -> Result<(), ArrayError> {
        assert!(disk < self.layout.disks());
        if self.failed.contains(&disk) {
            return Err(ArrayError::BadDiskState { disk });
        }
        if self.failed.len() >= 2 {
            let mut failed = self.failed_disks();
            failed.push(disk);
            return Err(ArrayError::TooManyFailures { failed });
        }
        self.failed.insert(disk);
        // Model the loss: clobber the physical disk's blocks in every stripe.
        for s in 0..self.stripes.len() {
            let col = self.rotation.to_logical(s, disk, self.layout.disks());
            self.stripes[s].erase_columns(&[col]);
        }
        Ok(())
    }

    /// Write `bytes` (a multiple of the block size) starting at logical
    /// element `start`, updating parities incrementally. Writing while
    /// degraded is not supported by this layer (a real controller would
    /// log-structure it); rebuild first.
    pub fn write(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError> {
        assert!(
            bytes.len() % self.block_size == 0,
            "write length must be a multiple of the block size"
        );
        if !self.failed.is_empty() {
            return Err(ArrayError::TooManyFailures {
                failed: self.failed_disks(),
            });
        }
        let count = bytes.len() / self.block_size;
        if count == 0 {
            return Ok(());
        }
        self.locate(start)?;
        self.locate(start + count - 1)?;
        let mut offset = 0;
        let mut element = start;
        while offset < count {
            let (s, within) = self.locate(element).expect("range checked");
            let room = self.layout.data_len() - within;
            let chunk = room.min(count - offset);
            write_logical(
                &self.layout,
                &mut self.stripes[s],
                within,
                &bytes[offset * self.block_size..(offset + chunk) * self.block_size],
            );
            offset += chunk;
            element += chunk;
        }
        Ok(())
    }

    /// Read `count` logical elements starting at `start`, serving through
    /// up to two failed disks by reconstructing the lost elements.
    pub fn read(&self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.locate(start)?;
        self.locate(start + count - 1)?;
        let mut out = Vec::with_capacity(count * self.block_size);
        let mut element = start;
        let mut remaining = count;
        while remaining > 0 {
            let (s, within) = self.locate(element).expect("range checked");
            let room = self.layout.data_len() - within;
            let chunk = room.min(remaining);
            self.read_segment(s, within, chunk, &mut out)?;
            element += chunk;
            remaining -= chunk;
        }
        Ok(out)
    }

    fn read_segment(
        &self,
        stripe_idx: usize,
        start: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), ArrayError> {
        let failed_cols = self.failed_logical_cols(stripe_idx);
        let requested: Vec<Cell> = (start..start + len)
            .map(|i| self.layout.logical_to_cell(i))
            .collect();
        let any_lost = requested.iter().any(|c| failed_cols.contains(&c.col));
        if !any_lost {
            for cell in requested {
                out.extend_from_slice(self.stripes[stripe_idx].block(cell));
            }
            return Ok(());
        }
        // Reconstruct into a scratch copy. The erasure must cover the
        // *whole* failed columns, not just the requested cells: recovery
        // chains may route through other lost elements of those columns.
        let grid = self.layout.grid();
        let erased: BTreeSet<Cell> = failed_cols
            .iter()
            .flat_map(|&col| grid.column(col))
            .collect();
        let plan =
            plan_recovery(&self.layout, &erased).map_err(|_| ArrayError::TooManyFailures {
                failed: self.failed_disks(),
            })?;
        let mut scratch = self.stripes[stripe_idx].clone();
        apply_plan(&mut scratch, &plan);
        for cell in requested {
            out.extend_from_slice(scratch.block(cell));
        }
        Ok(())
    }

    /// Rebuild a failed disk in place: reconstruct every stripe's lost
    /// column and mark the disk healthy. Returns the total number of
    /// element reads issued (deduplicated per stripe).
    pub fn rebuild_disk(&mut self, disk: usize) -> Result<usize, ArrayError> {
        if !self.failed.contains(&disk) {
            return Err(ArrayError::BadDiskState { disk });
        }
        let mut reads = 0;
        let grid = self.layout.grid();
        for s in 0..self.stripes.len() {
            // All failed columns must be part of the erasure — recovery
            // chains for this disk's column route through the other failed
            // column's elements when two disks are down.
            let failed_cols = self.failed_logical_cols(s);
            let erased: BTreeSet<Cell> = failed_cols
                .iter()
                .flat_map(|&col| grid.column(col))
                .collect();
            let plan =
                plan_recovery(&self.layout, &erased).map_err(|_| ArrayError::TooManyFailures {
                    failed: self.failed_disks(),
                })?;
            reads += plan.surviving_reads().len();
            apply_plan(&mut self.stripes[s], &plan);
            // Disks other than `disk` stay failed: drop their recovered
            // contents again so the array's state matches reality.
            let this_col = self.rotation.to_logical(s, disk, self.layout.disks());
            let still_failed: Vec<usize> =
                failed_cols.into_iter().filter(|&c| c != this_col).collect();
            self.stripes[s].erase_columns(&still_failed);
        }
        self.failed.remove(&disk);
        Ok(reads)
    }

    /// Re-encode every stripe from its data (used after bulk loads).
    pub fn reencode_all(&mut self) {
        for s in &mut self.stripes {
            encode(&self.layout, s);
        }
    }

    /// Direct access to one stripe (testing and scrubbing).
    pub fn stripe(&self, idx: usize) -> &Stripe {
        &self.stripes[idx]
    }

    /// Mutable access to one stripe (testing and fault injection).
    pub fn stripe_mut(&mut self, idx: usize) -> &mut Stripe {
        &mut self.stripes[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    fn small_array() -> Array {
        let layout = dcode(5).unwrap();
        let mut a = Array::new(layout, 16, 4, RotationScheme::PerStripe);
        let payload: Vec<u8> = (0..a.capacity_bytes()).map(|i| (i % 253) as u8).collect();
        a.write(0, &payload).unwrap();
        a
    }

    #[test]
    fn write_read_roundtrip_across_stripes() {
        let a = small_array();
        let payload: Vec<u8> = (0..a.capacity_bytes()).map(|i| (i % 253) as u8).collect();
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), payload);
        // Unaligned middle read crossing a stripe boundary.
        let mid = a.read(12, 10).unwrap();
        assert_eq!(mid, &payload[12 * 16..22 * 16]);
    }

    #[test]
    fn degraded_reads_serve_correct_bytes() {
        let mut a = small_array();
        let golden = a.read(0, a.capacity_elements()).unwrap();
        a.fail_disk(2).unwrap();
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), golden);
        a.fail_disk(4).unwrap();
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), golden);
        // A third failure is refused.
        assert!(matches!(
            a.fail_disk(0),
            Err(ArrayError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn rebuild_restores_the_disk() {
        let mut a = small_array();
        let golden = a.read(0, a.capacity_elements()).unwrap();
        a.fail_disk(1).unwrap();
        let reads = a.rebuild_disk(1).unwrap();
        assert!(reads > 0);
        assert!(a.failed_disks().is_empty());
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), golden);
        // Writes work again after rebuild.
        a.write(3, &[7u8; 16]).unwrap();
        assert_eq!(&a.read(3, 1).unwrap(), &[7u8; 16]);
    }

    #[test]
    fn sequential_rebuild_after_double_failure() {
        // Regression: rebuilding one disk while another is still down must
        // route recovery chains around BOTH failed columns, and must not
        // resurrect the still-failed disk's contents.
        let mut a = small_array();
        let golden = a.read(0, a.capacity_elements()).unwrap();
        a.fail_disk(0).unwrap();
        a.fail_disk(3).unwrap();
        a.rebuild_disk(0).unwrap();
        assert_eq!(a.failed_disks(), vec![3]);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), golden);
        a.rebuild_disk(3).unwrap();
        assert!(a.failed_disks().is_empty());
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), golden);
        // Every stripe is parity-consistent again.
        for s in 0..a.stripes() {
            assert!(dcode_codec::verify_parities(a.layout(), a.stripe(s)));
        }
    }

    #[test]
    fn rebuild_of_healthy_disk_rejected() {
        let mut a = small_array();
        assert!(matches!(
            a.rebuild_disk(0),
            Err(ArrayError::BadDiskState { disk: 0 })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let a = small_array();
        let cap = a.capacity_elements();
        assert!(matches!(a.read(cap, 1), Err(ArrayError::OutOfRange { .. })));
        assert!(a.read(cap - 1, 1).is_ok());
        assert!(a.read(cap - 1, 2).is_err());
    }

    #[test]
    fn writes_blocked_while_degraded() {
        let mut a = small_array();
        a.fail_disk(0).unwrap();
        assert!(matches!(
            a.write(0, &[0u8; 16]),
            Err(ArrayError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn rotation_moves_physical_columns() {
        // With rotation, failing one physical disk erases different logical
        // columns in different stripes.
        let mut a = small_array();
        a.fail_disk(3).unwrap();
        let disks = a.layout().disks();
        let cols: Vec<usize> = (0..a.stripes())
            .map(|s| RotationScheme::PerStripe.to_logical(s, 3, disks))
            .collect();
        assert!(cols.windows(2).any(|w| w[0] != w[1]));
    }
}
