//! Stripe-to-disk rotation schemes.
//!
//! Section II of the paper discusses the classic global balancing trick —
//! "rotating the mappings from logic disks to physical disks stripe by
//! stripe", as RAID-5 does — and argues it *cannot* fix RAID-6 imbalance
//! because stripes have different access frequencies: rotation averages
//! parity placement across stripes, but a hot stripe still hammers
//! whichever physical disks hold its parities. [`RotationScheme`] implements
//! both mappings so the `rotation_study` binary can reproduce that argument
//! quantitatively.

/// How a stripe's logical columns map onto physical disks.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RotationScheme {
    /// Identity: logical column `c` is physical disk `c` in every stripe.
    None,
    /// Left-symmetric rotation: stripe `s` shifts its columns by `s`
    /// positions, so parity placement cycles across physical disks.
    PerStripe,
}

impl RotationScheme {
    /// Physical disk holding logical column `col` of stripe `stripe`.
    pub fn to_physical(self, stripe: usize, col: usize, disks: usize) -> usize {
        match self {
            RotationScheme::None => col,
            RotationScheme::PerStripe => (col + stripe) % disks,
        }
    }

    /// Logical column of stripe `stripe` stored on physical disk `disk`.
    pub fn to_logical(self, stripe: usize, disk: usize, disks: usize) -> usize {
        match self {
            RotationScheme::None => disk,
            RotationScheme::PerStripe => (disk + disks - stripe % disks) % disks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let r = RotationScheme::None;
        for s in 0..5 {
            for c in 0..7 {
                assert_eq!(r.to_physical(s, c, 7), c);
                assert_eq!(r.to_logical(s, c, 7), c);
            }
        }
    }

    #[test]
    fn per_stripe_is_a_bijection_and_inverts() {
        let r = RotationScheme::PerStripe;
        for s in 0..20 {
            let mut seen = [false; 7];
            for c in 0..7 {
                let p = r.to_physical(s, c, 7);
                assert!(!seen[p], "collision at stripe {s}");
                seen[p] = true;
                assert_eq!(r.to_logical(s, p, 7), c);
            }
        }
    }

    #[test]
    fn rotation_cycles_parity_position() {
        // The disk holding logical column 0 advances by one per stripe.
        let r = RotationScheme::PerStripe;
        let placements: Vec<usize> = (0..7).map(|s| r.to_physical(s, 0, 7)).collect();
        assert_eq!(placements, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
