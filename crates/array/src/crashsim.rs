//! Exhaustive crash-point harness: every write-path operation, crashed at
//! **every** backend-write index, remounted, and verified.
//!
//! The journal ([`crate::journal`]) claims that a crash at any instant
//! leaves the array recoverable: mount-time replay produces a state where
//! no acknowledged write is lost and no stripe's parity disagrees with
//! its data. This module *checks that claim by enumeration* instead of
//! sampling: for each operation in [`CrashOp::ALL`] it first dry-runs the
//! op to count its backend writes, then re-runs it once per write index
//! `n`, arming [`FaultInjector::arm_crash`]`(n)` so the power goes out
//! exactly before the `n`-th write lands. The medium is power-cycled
//! (dropping writes still in the volatile cache, when enabled), remounted
//! through the journaled attach, and verified:
//!
//! * every element the op did not touch still holds its pre-op content
//!   (an acknowledged write survived the crash);
//! * every element the op touched holds either its old or its new content
//!   (the un-acknowledged write is allowed to be partially visible, but
//!   only with whole-element granularity and consistent parity);
//! * a [`scrub_pass`](crate::ResilientArray::scrub_pass) reports zero
//!   parity mismatches (no write hole).
//!
//! Each scenario is rebuilt from scratch deterministically per crash
//! index, so any failure is replayable from `(op, crash index, seed)` —
//! which is exactly what a [`CrashFailure`] records.
//!
//! The harness also tests *itself*: run with a planted
//! [`JournalMutation`] the sweep must **find** failures ([`passed`]
//! inverts), proving the oracle can see the hole it claims to close.
//!
//! [`FaultInjector::arm_crash`]: dcode_faults::FaultInjector::arm_crash
//! [`passed`]: CrashSweepReport::passed

use crate::journal::journal_blocks_per_disk;
use crate::resilient::{
    AttachTopology, JournalMutation, ResilientArray, ResilientStats, RetryPolicy,
};
use crate::rotation::RotationScheme;
use dcode_core::layout::CodeLayout;
use dcode_faults::{catch_crash, FaultInjector, FaultPlan, MemBackend, SharedInjector};

/// The write-path operations the sweep crashes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CrashOp {
    /// A full-stripe write to a healthy array.
    FullWrite,
    /// A partial write crossing a stripe boundary (two journal records).
    PartialWrite,
    /// A partial write while one slot is failed (redo-mode records).
    DegradedWrite,
    /// Rebuild onto a hot spare, crashed mid-copy and restarted on a
    /// fresh spare after the remount.
    RebuildStep,
    /// A double crash: the mount-time *replay* of a crashed write is
    /// itself crashed at every write index, then remounted again.
    ReplayCrash,
}

impl CrashOp {
    /// Every op the sweep covers.
    pub const ALL: [CrashOp; 5] = [
        CrashOp::FullWrite,
        CrashOp::PartialWrite,
        CrashOp::DegradedWrite,
        CrashOp::RebuildStep,
        CrashOp::ReplayCrash,
    ];

    /// Stable name (reports, JSON).
    pub fn name(self) -> &'static str {
        match self {
            CrashOp::FullWrite => "full-write",
            CrashOp::PartialWrite => "partial-write",
            CrashOp::DegradedWrite => "degraded-write",
            CrashOp::RebuildStep => "rebuild-step",
            CrashOp::ReplayCrash => "replay-crash",
        }
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct CrashSimConfig {
    /// The code under test.
    pub layout: CodeLayout,
    /// Stripes in the test array (small: the sweep is quadratic-ish).
    pub stripes: usize,
    /// Bytes per block (≥ 32 for the journal).
    pub block_size: usize,
    /// Seed for payload contents and the fault plan.
    pub seed: u64,
    /// Model a volatile write-back cache (un-flushed writes are lost at
    /// the crash) — the setting that catches ack-before-durable bugs.
    pub volatile_cache: bool,
    /// Planted write-path bug; the sweep must then *find* failures.
    pub mutation: Option<JournalMutation>,
}

impl CrashSimConfig {
    /// Defaults for `layout` at `seed`: 3 stripes, 32-byte blocks,
    /// volatile cache on, no mutation.
    pub fn new(layout: CodeLayout, seed: u64) -> Self {
        CrashSimConfig {
            layout,
            stripes: 3,
            block_size: 32,
            seed,
            volatile_cache: true,
            mutation: None,
        }
    }
}

/// One crash point that broke an invariant — replayable from
/// `(op, crash_at, seed)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrashFailure {
    /// The operation being crashed.
    pub op: &'static str,
    /// The backend-write index the crash fired on.
    pub crash_at: u64,
    /// The sweep seed.
    pub seed: u64,
    /// What the verifier saw.
    pub detail: String,
}

/// Per-op sweep counters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpSweep {
    /// Operation name.
    pub op: &'static str,
    /// Crash points enumerated (== backend writes the op performs).
    pub crash_points: u64,
    /// Remounts whose replay re-applied at least one record.
    pub replays: u64,
    /// Crash points that broke an invariant.
    pub failures: u64,
}

/// The whole sweep's outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CrashSweepReport {
    /// Sweep seed.
    pub seed: u64,
    /// Whether the volatile write cache was modeled.
    pub volatile_cache: bool,
    /// Whether a mutation was planted (inverts [`passed`](Self::passed)).
    pub mutated: bool,
    /// Total crash points enumerated across all ops.
    pub crash_points: u64,
    /// Total remounts whose replay re-applied records.
    pub replays: u64,
    /// Per-op breakdown.
    pub per_op: Vec<OpSweep>,
    /// Every invariant violation found.
    pub failures: Vec<CrashFailure>,
}

impl CrashSweepReport {
    /// A clean run finds nothing; a mutated run must find something —
    /// otherwise the harness could not see the hole it claims to close.
    pub fn passed(&self) -> bool {
        if self.mutated {
            !self.failures.is_empty()
        } else {
            self.failures.is_empty()
        }
    }

    /// JSON object (the CI artifact format).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"seed\":{},\"volatile_cache\":{},\"mutated\":{},\"crash_points\":{},\"replays\":{},\"passed\":{}",
            self.seed,
            self.volatile_cache,
            self.mutated,
            self.crash_points,
            self.replays,
            self.passed()
        ));
        s.push_str(",\"per_op\":[");
        for (i, op) in self.per_op.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"op\":\"{}\",\"crash_points\":{},\"replays\":{},\"failures\":{}}}",
                op.op, op.crash_points, op.replays, op.failures
            ));
        }
        s.push_str("],\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"op\":\"{}\",\"crash_at\":{},\"seed\":{},\"detail\":\"{}\"}}",
                f.op,
                f.crash_at,
                f.seed,
                f.detail.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        s.push_str("]}");
        s
    }
}

type TestArray = ResilientArray<SharedInjector<MemBackend>>;

/// Deterministic payload bytes (splitmix64 stream).
fn prand_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

/// One deterministically rebuilt scenario instance.
struct Instance {
    array: TestArray,
    handle: SharedInjector<MemBackend>,
    /// Full logical content before the op (all of it acknowledged).
    initial: Vec<u8>,
}

/// Build a fresh journaled array over a shared injector, filled with the
/// seed's initial payload, fully durable.
fn prepare(cfg: &CrashSimConfig, spares: usize) -> Instance {
    let layout = cfg.layout.clone();
    let rows = layout.rows();
    let mut plan = FaultPlan::quiet(cfg.seed);
    plan.volatile_cache = cfg.volatile_cache;
    let blocks = cfg.stripes * rows + journal_blocks_per_disk(&layout, cfg.block_size);
    let injector = FaultInjector::new(
        MemBackend::new(layout.disks() + spares, blocks, cfg.block_size),
        plan,
    );
    let handle = SharedInjector::new(injector);
    let mut array = ResilientArray::format_journaled(
        layout,
        cfg.block_size,
        cfg.stripes,
        RotationScheme::PerStripe,
        handle.clone(),
        RetryPolicy::default(),
        1_000_000, // never auto-fail: failures here are explicit
    );
    array.set_journal_mutation(cfg.mutation);
    let initial = prand_bytes(cfg.seed ^ 0x1234_5678, array.capacity_bytes());
    array.write(0, &initial).unwrap();
    Instance {
        array,
        handle,
        initial,
    }
}

/// The write each op performs, as `(start_element, new_bytes)`; `None`
/// for ops that mutate no logical data (rebuild).
fn op_write(cfg: &CrashSimConfig, op: CrashOp) -> Option<(usize, Vec<u8>)> {
    let k = cfg.layout.data_len();
    let bs = cfg.block_size;
    match op {
        CrashOp::FullWrite => Some((k, prand_bytes(cfg.seed ^ 0xF0F0, k * bs))),
        // Crosses the stripe 0 → 1 boundary: two segments, two records.
        CrashOp::PartialWrite | CrashOp::ReplayCrash => {
            Some((k - 1, prand_bytes(cfg.seed ^ 0x0F0F, 3 * bs)))
        }
        CrashOp::DegradedWrite => Some((2, prand_bytes(cfg.seed ^ 0xD00D, 3 * bs))),
        CrashOp::RebuildStep => None,
    }
}

/// Prepare the scenario state the crash will interrupt.
fn setup(cfg: &CrashSimConfig, op: CrashOp) -> Instance {
    let spares = if op == CrashOp::RebuildStep { 2 } else { 0 };
    let mut inst = prepare(cfg, spares);
    match op {
        CrashOp::DegradedWrite => inst.array.fail_disk(1).unwrap(),
        CrashOp::RebuildStep => {
            // Attaches the first spare and starts the rebuild.
            inst.array.fail_disk(2).unwrap();
        }
        CrashOp::ReplayCrash => {
            // First crash: a partial write interrupted mid-flight. The
            // index is fixed (two-thirds in, usually past the commit);
            // the *sweep* then crashes the replay of this state.
            let (start, bytes) = op_write(cfg, op).expect("replay op writes");
            let probe = {
                let mut dry = prepare(cfg, 0);
                let before = dry.handle.lock().writes_done();
                dry.array.write(start, &bytes).unwrap();
                let total = dry.handle.lock().writes_done();
                total - before
            };
            inst.handle.lock().arm_crash(probe * 2 / 3);
            let a = &mut inst.array;
            let crashed = catch_crash(move || {
                a.write(start, &bytes).unwrap();
            });
            assert!(crashed.is_none(), "fixed first crash must fire");
            inst.handle.lock().power_cycle();
        }
        CrashOp::FullWrite | CrashOp::PartialWrite => {}
    }
    inst
}

/// Run the op to completion (the dry-run measuring pass, and the body the
/// armed runs crash out of).
fn run_op(cfg: &CrashSimConfig, op: CrashOp, inst: &mut Instance) {
    match op {
        CrashOp::RebuildStep => {
            let rows = cfg.layout.rows();
            while !inst.array.rebuild_step(rows).unwrap() {}
        }
        CrashOp::ReplayCrash => {
            // The op under the sweep's crash is the remount itself.
            let remounted = remount(cfg, op, inst.handle.clone());
            inst.array = remounted.expect("clean replay remount");
        }
        _ => {
            let (start, bytes) = op_write(cfg, op).expect("write op");
            inst.array.write(start, &bytes).unwrap();
        }
    }
}

/// Remount the medium behind `handle` the way an operator would after
/// the crash: identity topology for healthy scenarios, the degraded /
/// mid-rebuild topologies where the scenario calls for them.
fn remount(
    cfg: &CrashSimConfig,
    op: CrashOp,
    handle: SharedInjector<MemBackend>,
) -> Result<TestArray, String> {
    let layout = cfg.layout.clone();
    let disks = layout.disks();
    let topology = match op {
        CrashOp::DegradedWrite => AttachTopology {
            slot_to_disk: (0..disks).collect(),
            failed_slots: vec![1],
            spares: Vec::new(),
        },
        CrashOp::RebuildStep => {
            // Slot 2 went down and was rebuilding onto the first spare
            // (physical disk `disks`) when the power went. The half-copied
            // spare cannot be trusted, so it comes back as the failed
            // slot's disk and the rebuild restarts onto the second spare.
            AttachTopology {
                slot_to_disk: (0..disks).map(|s| if s == 2 { disks } else { s }).collect(),
                failed_slots: vec![2],
                spares: vec![disks + 1],
            }
        }
        _ => AttachTopology {
            slot_to_disk: (0..disks).collect(),
            failed_slots: Vec::new(),
            spares: Vec::new(),
        },
    };
    ResilientArray::attach_journaled_as(
        layout,
        cfg.block_size,
        cfg.stripes,
        RotationScheme::PerStripe,
        handle,
        RetryPolicy::default(),
        1_000_000,
        topology,
    )
    .map_err(|e| format!("attach failed: {e}"))
}

/// Check the remounted array against the oracle. `write` is the op's
/// logical write, if it performs one.
fn verify(
    array: &mut TestArray,
    initial: &[u8],
    write: Option<&(usize, Vec<u8>)>,
) -> Result<(), String> {
    let bs = array.block_size();
    let elements = array.capacity_elements();
    let got = array
        .read(0, elements)
        .map_err(|e| format!("post-remount read failed: {e:?}"))?;
    let (start, count) = write.map_or((0, 0), |(s, b)| (*s, b.len() / bs));
    for e in 0..elements {
        let here = &got[e * bs..(e + 1) * bs];
        let old = &initial[e * bs..(e + 1) * bs];
        if e >= start && e < start + count {
            let new = write
                .map(|(s, b)| &b[(e - s) * bs..(e - s + 1) * bs])
                .unwrap();
            if here != old && here != new {
                return Err(format!("element {e}: neither old nor new content"));
            }
        } else if here != old {
            return Err(format!("element {e}: acknowledged write lost"));
        }
    }
    let scrub = array
        .scrub_pass()
        .map_err(|e| format!("post-remount scrub failed: {e:?}"))?;
    if scrub.parity_mismatches > 0 {
        return Err(format!(
            "write hole: {} parity-inconsistent block(s) across {} checked stripe(s)",
            scrub.parity_mismatches, scrub.parity_checked
        ));
    }
    Ok(())
}

/// Sweep one op: dry-run to count its writes, then crash at every index.
fn sweep_op(cfg: &CrashSimConfig, op: CrashOp) -> (OpSweep, Vec<CrashFailure>) {
    // Dry run: how many backend writes does this op perform?
    let writes = {
        let mut inst = setup(cfg, op);
        let before = inst.handle.lock().writes_done();
        run_op(cfg, op, &mut inst);
        let total = inst.handle.lock().writes_done();
        total - before
    };
    let mut out = OpSweep {
        op: op.name(),
        crash_points: writes,
        replays: 0,
        failures: 0,
    };
    let mut failures = Vec::new();
    for n in 0..writes {
        let mut inst = setup(cfg, op);
        inst.handle.lock().arm_crash(n);
        {
            let i = &mut inst;
            let crashed = catch_crash(move || run_op(cfg, op, i));
            assert!(crashed.is_none(), "armed crash {n} must fire for {op:?}");
        }
        inst.handle.lock().power_cycle();
        let result = remount(cfg, op, inst.handle.clone()).and_then(|mut array| {
            if op == CrashOp::RebuildStep {
                // Restart the rebuild onto the fresh spare and drive it
                // home before judging the array.
                array.try_attach_spare();
                let rows = cfg.layout.rows();
                while !array
                    .rebuild_step(rows)
                    .map_err(|e| format!("rebuild after remount failed: {e:?}"))?
                {}
            }
            if array.last_replay().is_some_and(|r| r.replayed > 0) {
                out.replays += 1;
            }
            verify(&mut array, &inst.initial, op_write(cfg, op).as_ref())
        });
        if let Err(detail) = result {
            out.failures += 1;
            failures.push(CrashFailure {
                op: op.name(),
                crash_at: n,
                seed: cfg.seed,
                detail,
            });
        }
    }
    (out, failures)
}

/// Run the exhaustive sweep over every op in [`CrashOp::ALL`].
pub fn sweep(cfg: &CrashSimConfig) -> CrashSweepReport {
    let mut report = CrashSweepReport {
        seed: cfg.seed,
        volatile_cache: cfg.volatile_cache,
        mutated: cfg.mutation.is_some(),
        crash_points: 0,
        replays: 0,
        per_op: Vec::new(),
        failures: Vec::new(),
    };
    for op in CrashOp::ALL {
        let (op_sweep, failures) = sweep_op(cfg, op);
        report.crash_points += op_sweep.crash_points;
        report.replays += op_sweep.replays;
        report.per_op.push(op_sweep);
        report.failures.extend(failures);
    }
    report
}

/// Convenience accessor used by tests: the stats of a freshly journaled
/// array formatted like the sweep's instances (exercises the format path
/// without running a sweep).
pub fn probe_stats(cfg: &CrashSimConfig) -> ResilientStats {
    prepare(cfg, 0).array.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn sweep_is_exhaustive_and_clean() {
        let cfg = CrashSimConfig::new(dcode(5).unwrap(), 1);
        let report = sweep(&cfg);
        assert!(
            report.failures.is_empty(),
            "clean sweep must find nothing: {:?}",
            report.failures
        );
        assert!(report.passed());
        assert_eq!(report.per_op.len(), CrashOp::ALL.len());
        for op in &report.per_op {
            assert!(op.crash_points > 0, "{}: no crash points", op.op);
        }
        // Crashes landing after the commit flush must actually replay.
        assert!(report.replays > 0, "no crash point exercised replay");
    }

    #[test]
    fn sweep_without_volatile_cache_is_also_clean() {
        let mut cfg = CrashSimConfig::new(dcode(5).unwrap(), 2);
        cfg.volatile_cache = false;
        let report = sweep(&cfg);
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn planted_retire_before_parity_is_caught() {
        let mut cfg = CrashSimConfig::new(dcode(5).unwrap(), 3);
        cfg.mutation = Some(JournalMutation::RetireBeforeParity);
        let report = sweep(&cfg);
        assert!(
            !report.failures.is_empty(),
            "the sweep must catch the planted write hole"
        );
        assert!(report.passed(), "mutated passed() inverts");
        // The counterexample is replayable: op + crash index + seed.
        let f = &report.failures[0];
        assert_eq!(f.seed, 3);
        assert!(f.detail.contains("parity") || f.detail.contains("content"));
    }

    #[test]
    fn report_serializes_to_json() {
        let cfg = CrashSimConfig::new(dcode(5).unwrap(), 4);
        let report = sweep(&cfg);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"per_op\""));
        assert!(json.contains("\"passed\":true"));
    }

    #[test]
    fn probe_stats_counts_journal_records() {
        let cfg = CrashSimConfig::new(dcode(5).unwrap(), 5);
        let stats = probe_stats(&cfg);
        assert!(stats.journal_records >= cfg.stripes as u64);
        assert_eq!(stats.journal_records, stats.journal_retires);
        assert_eq!(stats.journal_skips, 0);
    }
}
