//! A fault-tolerant array over a [`DiskBackend`]: the layer that turns the
//! coding theory into a survivable storage device.
//!
//! The in-memory [`Array`](crate::Array) models the textbook failure mode —
//! a disk is present or absent. This array faces the failure modes real
//! RAID-6 deployments document (SD codes' disk+sector model, "Beyond RAID
//! 6"'s silent corruption): sectors die individually, writes tear, bits
//! rot, devices stall and then vanish. The machinery, bottom to top:
//!
//! * every block read passes through a [`RetryPolicy`] — bounded retries
//!   with exponential backoff *accounting* (virtual microseconds, never
//!   slept);
//! * every block carries a CRC32; a mismatch converts silent corruption
//!   into a detectable erasure, served through parity and then repaired
//!   in place (read-repair);
//! * a sector-level read failure degrades only the *elements* that need
//!   it: a [`plan_recovery`] subplan reconstructs the lost cells from the
//!   survivors, without failing the whole disk;
//! * a slot whose error count crosses the threshold auto-transitions to
//!   `Failed`, and a configured hot spare is attached automatically;
//! * rebuild onto the spare runs incrementally ([`rebuild_step`]) with a
//!   per-block watermark, and reads are served correctly mid-rebuild:
//!   below the watermark from the spare, above it through parity.
//!
//! Writes are full-stripe read-modify-write (reconstructing through
//! failures first), so the array accepts writes while degraded — the
//! limitation the in-memory array documents away is handled here.
//!
//! [`rebuild_step`]: ResilientArray::rebuild_step

use crate::array::ArrayError;
use crate::device::ElementIo;
use crate::journal::{
    IntentRecord, JournalSpec, JournalState, RecordEntry, RecordMode, ReplayOutcome, ReplaySummary,
    SlotHeader,
};
use crate::rotation::RotationScheme;
use dcode_codec::{CacheStats, EncodeArena, ScheduleCache, Stripe};
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_faults::{crc32, DiskBackend, DiskError};
use std::collections::BTreeSet;

/// Bounded-retry policy for transient backend errors.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub max_retries: usize,
    /// Backoff charged before retry `k` is `backoff_base_us << k` virtual
    /// microseconds — accounted in [`ResilientStats::backoff_us`], never
    /// slept.
    pub backoff_base_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_us: 500,
        }
    }
}

impl RetryPolicy {
    /// Virtual backoff charged before retry `attempt`, saturating at
    /// `u64::MAX` instead of shifting past the bit width: a user-supplied
    /// `max_retries ≥ 64` used to panic in debug builds (and silently wrap
    /// the charge to zero in release) at `backoff_base_us << attempt`.
    fn backoff_us(&self, attempt: usize) -> u64 {
        u32::try_from(attempt)
            .ok()
            .and_then(|a| 1u64.checked_shl(a))
            .map_or(u64::MAX, |mult| self.backoff_base_us.saturating_mul(mult))
    }
}

/// Health of one array slot (a logical position of the code, mapped to a
/// physical backend disk).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// Serving reads and writes normally.
    Healthy,
    /// Past the error threshold or reported dead; served through parity.
    Failed,
    /// Mapped to a hot spare; blocks below the rebuild watermark are
    /// valid, the rest are served through parity.
    Rebuilding,
}

/// Counters for everything the resilient layer did.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ResilientStats {
    /// Logical elements read.
    pub element_reads: u64,
    /// Logical elements written.
    pub element_writes: u64,
    /// Backend retries issued for transient errors.
    pub retries: u64,
    /// Virtual backoff charged across all retries, microseconds.
    pub backoff_us: u64,
    /// Reads (or write-path fetches) that needed parity reconstruction.
    pub degraded_reads: u64,
    /// Blocks whose CRC32 did not match — silent corruption converted
    /// into an erasure.
    pub checksum_catches: u64,
    /// Reconstructed blocks written back in place after a checksum catch
    /// or sector failure on an otherwise healthy slot.
    pub read_repairs: u64,
    /// Slots auto-transitioned to `Failed` (error threshold or device
    /// reported dead).
    pub auto_fails: u64,
    /// Hot spares attached.
    pub spares_attached: u64,
    /// Rebuilds run to completion.
    pub rebuilds_completed: u64,
    /// Blocks reconstructed onto spares.
    pub rebuilt_blocks: u64,
    /// Intent records committed to the journal.
    pub journal_records: u64,
    /// Intent records retired after their writes landed.
    pub journal_retires: u64,
    /// Stripe mutations that proceeded unjournaled because no disk would
    /// accept the record (availability over protection; counted loudly).
    pub journal_skips: u64,
    /// Committed records re-applied by mount-time replay.
    pub journal_replays: u64,
    /// Torn/uncommitted records discarded by mount-time replay.
    pub journal_discards: u64,
}

/// Deliberately planted write-path ordering bugs. The crash sweep runs
/// with a mutation enabled to prove it *fails* — the harness's own
/// mutation test, mirroring `dcode race`'s checked mutations.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum JournalMutation {
    /// Retire the intent record after the data writes but *before* the
    /// parity writes — re-opening the write hole the journal closes. A
    /// crash between the retire and the parity writes leaves a
    /// parity-inconsistent stripe with no record to replay.
    RetireBeforeParity,
}

/// Disk topology for remounting an array that went down degraded or
/// mid-rebuild (see
/// [`attach_journaled_as`](ResilientArray::attach_journaled_as)). The
/// identity topology — every slot on its own disk, the rest spares — is
/// what [`attach_journaled`](ResilientArray::attach_journaled) uses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttachTopology {
    /// Physical backend disk serving each slot.
    pub slot_to_disk: Vec<usize>,
    /// Slots whose content is lost (served through parity until rebuilt).
    pub failed_slots: Vec<usize>,
    /// Unmapped physical disks available as hot spares, in attach order.
    pub spares: Vec<usize>,
}

/// In-progress rebuild: blocks `[0, next_block)` of `slot` are already
/// reconstructed onto its new disk.
struct Rebuild {
    slot: usize,
    next_block: usize,
}

/// A RAID-6 array served from a [`DiskBackend`], with retries, checksums,
/// sector-level degraded reads, auto-failure, and hot-spare rebuild.
pub struct ResilientArray<B> {
    layout: CodeLayout,
    rotation: RotationScheme,
    block_size: usize,
    n_stripes: usize,
    backend: B,
    /// Slot → physical backend disk (remapped when a spare is attached).
    slot_to_disk: Vec<usize>,
    /// Physical disks not yet mapped to any slot, in attach order.
    spares: Vec<usize>,
    state: Vec<SlotState>,
    /// Cumulative hard-error count per slot (reset on spare attach).
    errors: Vec<usize>,
    /// Expected CRC32 of every block's *logical* content, `[slot][block]`.
    /// Updated on every write, even to failed slots (the expected content
    /// is what a rebuild must reproduce). A real deployment would persist
    /// these in the metadata region; the simulation keeps them in memory.
    crc: Vec<Vec<u32>>,
    policy: RetryPolicy,
    fail_threshold: usize,
    rebuild: Option<Rebuild>,
    /// Write-ahead parity intent journal geometry, when this array was
    /// formatted with one. `None` keeps the legacy unjournaled write path.
    journal: Option<JournalSpec>,
    /// Next intent-record sequence number.
    jseq: u64,
    /// What mount-time replay did, when this array came up via
    /// [`attach_journaled`](ResilientArray::attach_journaled).
    last_replay: Option<ReplaySummary>,
    /// Planted ordering bug for harness self-tests.
    mutation: Option<JournalMutation>,
    stats: ResilientStats,
    /// Memoized compiled XOR schedules: the full-stripe encode program and
    /// per-(erasure, missing-set) recovery subprograms. In steady state —
    /// the same disk dead across ten thousand reads, or a long rebuild —
    /// every encode and degraded read replays a cached program and
    /// compiles nothing.
    schedules: ScheduleCache,
    /// Reusable job buffers for batched multi-stripe re-encodes, so a
    /// steady stream of spanning writes allocates no scratch vectors.
    encode_arena: EncodeArena,
}

impl<B: DiskBackend> ResilientArray<B> {
    /// Build a fresh array over a zero-filled backend. The backend must
    /// hold at least `layout.disks()` devices of `n_stripes × rows`
    /// blocks; extra devices become hot spares. All-zero stripes are
    /// parity-consistent, so no initial encode pass is needed — but the
    /// backend really must be zeroed (as [`MemBackend::new`] and
    /// [`FileBackend::create`] guarantee).
    ///
    /// [`MemBackend::new`]: dcode_faults::MemBackend::new
    /// [`FileBackend::create`]: dcode_faults::FileBackend::create
    pub fn format(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
    ) -> Self {
        Self::build(
            layout,
            block_size,
            n_stripes,
            rotation,
            backend,
            policy,
            fail_threshold,
            None,
        )
    }

    /// [`format`](ResilientArray::format) with a write-ahead parity intent
    /// journal: the backend must carry
    /// [`journal_blocks_per_disk`](crate::journal::journal_blocks_per_disk)
    /// extra blocks per disk, and every stripe mutation is protected by an
    /// intent record (journal → flush → apply → flush → retire), closing
    /// the RAID-6 write hole across crashes.
    pub fn format_journaled(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
    ) -> Self {
        let spec = JournalSpec::for_geometry(&layout, block_size, n_stripes);
        let mut a = Self::build(
            layout,
            block_size,
            n_stripes,
            rotation,
            backend,
            policy,
            fail_threshold,
            Some(spec),
        );
        a.journal_write_state(ReplaySummary::default());
        a
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
        journal: Option<JournalSpec>,
    ) -> Self {
        assert!(n_stripes > 0 && block_size > 0 && fail_threshold > 0);
        assert_eq!(backend.block_size(), block_size, "backend block size");
        let per_disk =
            n_stripes * layout.rows() + journal.as_ref().map_or(0, JournalSpec::blocks_per_disk);
        assert_eq!(backend.blocks(), per_disk, "backend blocks per disk");
        assert!(backend.disks() >= layout.disks(), "not enough disks");
        let slots = layout.disks();
        let zero_crc = crc32(&vec![0u8; block_size]);
        ResilientArray {
            slot_to_disk: (0..slots).collect(),
            spares: (slots..backend.disks()).collect(),
            state: vec![SlotState::Healthy; slots],
            errors: vec![0; slots],
            crc: vec![vec![zero_crc; n_stripes * layout.rows()]; slots],
            layout,
            rotation,
            block_size,
            n_stripes,
            backend,
            policy,
            fail_threshold,
            rebuild: None,
            journal,
            jseq: 0,
            last_replay: None,
            mutation: None,
            stats: ResilientStats::default(),
            schedules: ScheduleCache::new(),
            encode_arena: EncodeArena::new(),
        }
    }

    /// Open an array over a backend that **already holds data** (a server
    /// restart, a shard directory from an earlier run): geometry checks as
    /// in [`ResilientArray::format`], then the per-block CRC table is
    /// seeded by reading every block back from the medium — the content on
    /// disk is declared the expected content. Any block that cannot be
    /// read through the retry policy fails the attach; degraded re-opens
    /// are handled a layer up by formatting a fresh array and rebuilding.
    pub fn attach(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
    ) -> Result<Self, DiskError> {
        let mut a = Self::format(
            layout,
            block_size,
            n_stripes,
            rotation,
            backend,
            policy,
            fail_threshold,
        );
        for slot in 0..a.layout.disks() {
            for block in 0..a.total_blocks() {
                let buf = a.read_raw(slot, block)?;
                a.crc[slot][block] = crc32(&buf);
            }
        }
        a.stats = ResilientStats::default();
        Ok(a)
    }

    /// [`attach`](ResilientArray::attach) for a journaled array: replay
    /// the journal *before* anything else (scan every record slot,
    /// discard torn records by CRC, re-apply committed ones
    /// idempotently, retire them), then seed the CRC table from the
    /// now-consistent medium. The replay summary is kept on the array
    /// ([`last_replay`](ResilientArray::last_replay)) and persisted in
    /// the journal state block.
    pub fn attach_journaled(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
    ) -> Result<Self, DiskError> {
        let disks = layout.disks();
        let total = backend.disks();
        Self::attach_journaled_as(
            layout,
            block_size,
            n_stripes,
            rotation,
            backend,
            policy,
            fail_threshold,
            AttachTopology {
                slot_to_disk: (0..disks).collect(),
                failed_slots: Vec::new(),
                spares: (disks..total).collect(),
            },
        )
    }

    /// [`attach_journaled`](ResilientArray::attach_journaled) with an
    /// explicit disk topology — how a crash harness (or an operator)
    /// remounts an array that went down degraded or mid-rebuild: slots
    /// may live on former spares, some slots may be known-failed (their
    /// content is served through parity and their CRCs materialize at
    /// rebuild), and the spare list is explicit. Replay still runs first;
    /// redo records skip writes to failed slots.
    #[allow(clippy::too_many_arguments)]
    pub fn attach_journaled_as(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
        topology: AttachTopology,
    ) -> Result<Self, DiskError> {
        let spec = JournalSpec::for_geometry(&layout, block_size, n_stripes);
        assert_eq!(topology.slot_to_disk.len(), layout.disks(), "slot map");
        let mut a = Self::build(
            layout,
            block_size,
            n_stripes,
            rotation,
            backend,
            policy,
            fail_threshold,
            Some(spec),
        );
        a.slot_to_disk = topology.slot_to_disk;
        a.spares = topology.spares;
        for &slot in &topology.failed_slots {
            a.state[slot] = SlotState::Failed;
        }
        let summary = a.journal_replay()?;
        for slot in 0..a.layout.disks() {
            if a.state[slot] == SlotState::Failed {
                continue;
            }
            for block in 0..a.total_blocks() {
                let buf = a.read_raw(slot, block)?;
                a.crc[slot][block] = crc32(&buf);
            }
        }
        a.stats = ResilientStats::default();
        a.stats.journal_replays = u64::from(summary.replayed);
        a.stats.journal_discards = u64::from(summary.discarded);
        a.last_replay = Some(summary);
        a.journal_write_state(summary);
        Ok(a)
    }

    /// The code this array runs.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.n_stripes
    }

    /// Bytes per element block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Logical data capacity in elements.
    pub fn capacity_elements(&self) -> usize {
        self.n_stripes * self.layout.data_len()
    }

    /// Logical data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_elements() * self.block_size
    }

    /// Per-slot health.
    pub fn slot_states(&self) -> &[SlotState] {
        &self.state
    }

    /// Slots currently failed (not counting rebuilding slots).
    pub fn failed_slots(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&s| self.state[s] == SlotState::Failed)
            .collect()
    }

    /// Physical backend disk currently serving `slot`.
    pub fn slot_disk(&self, slot: usize) -> usize {
        self.slot_to_disk[slot]
    }

    /// Hot spares not yet attached.
    pub fn spares_remaining(&self) -> usize {
        self.spares.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> &ResilientStats {
        &self.stats
    }

    /// Hit/miss counters of the embedded schedule cache — the steady-state
    /// proof that degraded reads and encodes stop compiling after warm-up.
    pub fn schedule_stats(&self) -> CacheStats {
        self.schedules.stats()
    }

    /// Rebuild progress as `(slot, blocks_done, blocks_total)`.
    pub fn rebuild_progress(&self) -> Option<(usize, usize, usize)> {
        self.rebuild
            .as_ref()
            .map(|r| (r.slot, r.next_block, self.total_blocks()))
    }

    /// Direct access to the backend (chaos harnesses reach through to the
    /// fault injector; tests corrupt the medium beneath the checksums).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consume the array and return its backend — how a crash harness
    /// recovers the medium after a [`CrashPanic`] unwound the op, to
    /// power-cycle and remount it.
    ///
    /// [`CrashPanic`]: dcode_faults::CrashPanic
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// The journal geometry, when this array is journaled.
    pub fn journal(&self) -> Option<&JournalSpec> {
        self.journal.as_ref()
    }

    /// What mount-time replay did, when this array came up via a
    /// journaled attach.
    pub fn last_replay(&self) -> Option<ReplaySummary> {
        self.last_replay
    }

    /// Plant (or clear) a deliberate write-path ordering bug. Harness
    /// self-test only: the crash sweep runs once with
    /// [`JournalMutation::RetireBeforeParity`] and asserts that it
    /// *catches* the resulting parity inconsistency.
    pub fn set_journal_mutation(&mut self, mutation: Option<JournalMutation>) {
        self.mutation = mutation;
    }

    fn rows(&self) -> usize {
        self.layout.rows()
    }

    fn total_blocks(&self) -> usize {
        self.n_stripes * self.rows()
    }

    fn block_of(&self, stripe: usize, row: usize) -> usize {
        stripe * self.rows() + row
    }

    fn slot_of(&self, stripe: usize, col: usize) -> usize {
        self.rotation.to_physical(stripe, col, self.layout.disks())
    }

    fn col_of(&self, stripe: usize, slot: usize) -> usize {
        self.rotation.to_logical(stripe, slot, self.layout.disks())
    }

    fn locate(&self, element: usize) -> Result<(usize, usize), ArrayError> {
        let capacity = self.capacity_elements();
        if element >= capacity {
            return Err(ArrayError::OutOfRange { element, capacity });
        }
        Ok((
            element / self.layout.data_len(),
            element % self.layout.data_len(),
        ))
    }

    fn too_many(&self) -> ArrayError {
        ArrayError::TooManyFailures {
            failed: self.failed_slots(),
        }
    }

    /// Whether a single block of `slot` can be read directly.
    fn block_readable(&self, slot: usize, block: usize) -> bool {
        match self.state[slot] {
            SlotState::Healthy => true,
            SlotState::Failed => false,
            SlotState::Rebuilding => self
                .rebuild
                .as_ref()
                .is_some_and(|r| r.slot == slot && block < r.next_block),
        }
    }

    /// Whether `slot` can serve *every* block of `stripe` directly — the
    /// column-granular notion erasure planning needs.
    fn slot_serves_stripe(&self, slot: usize, stripe: usize) -> bool {
        match self.state[slot] {
            SlotState::Healthy => true,
            SlotState::Failed => false,
            SlotState::Rebuilding => self
                .rebuild
                .as_ref()
                .is_some_and(|r| r.slot == slot && (stripe + 1) * self.rows() <= r.next_block),
        }
    }

    fn mark_failed(&mut self, slot: usize, auto: bool) {
        if self.state[slot] == SlotState::Failed {
            return;
        }
        self.state[slot] = SlotState::Failed;
        if auto {
            self.stats.auto_fails += 1;
        }
        if self.rebuild.as_ref().is_some_and(|r| r.slot == slot) {
            self.rebuild = None;
        }
        self.try_attach_spare();
    }

    /// Count a hard error against `slot`; past the threshold the slot
    /// auto-transitions to `Failed` and a spare is attached if available.
    fn record_error(&mut self, slot: usize) {
        if self.state[slot] == SlotState::Failed {
            return;
        }
        self.errors[slot] += 1;
        if self.errors[slot] >= self.fail_threshold {
            self.mark_failed(slot, true);
        }
    }

    fn note_hard_error(&mut self, slot: usize, e: &DiskError) {
        if matches!(e, DiskError::Failed { .. }) {
            self.mark_failed(slot, true);
        } else {
            self.record_error(slot);
        }
    }

    /// Mark a slot failed by hand (testing, operator action). Attaches a
    /// spare automatically if one is configured and no rebuild is active.
    pub fn fail_disk(&mut self, slot: usize) -> Result<(), ArrayError> {
        assert!(slot < self.layout.disks());
        if self.state[slot] == SlotState::Failed {
            return Err(ArrayError::BadDiskState { disk: slot });
        }
        self.mark_failed(slot, false);
        Ok(())
    }

    /// Attach a spare to the lowest failed slot, if a spare exists and no
    /// rebuild is in progress. Returns the slot a rebuild started on.
    /// Called automatically on every failure transition.
    pub fn try_attach_spare(&mut self) -> Option<usize> {
        if self.rebuild.is_some() || self.spares.is_empty() {
            return None;
        }
        let slot = (0..self.state.len()).find(|&s| self.state[s] == SlotState::Failed)?;
        let disk = self.spares.remove(0);
        self.slot_to_disk[slot] = disk;
        self.state[slot] = SlotState::Rebuilding;
        self.errors[slot] = 0;
        self.rebuild = Some(Rebuild {
            slot,
            next_block: 0,
        });
        self.stats.spares_attached += 1;
        Some(slot)
    }

    /// Raw block read through the retry policy.
    fn read_raw(&mut self, slot: usize, block: usize) -> Result<Vec<u8>, DiskError> {
        let disk = self.slot_to_disk[slot];
        let mut buf = vec![0u8; self.block_size];
        let mut attempt = 0usize;
        loop {
            match self.backend.read_block(disk, block, &mut buf) {
                Ok(()) => return Ok(buf),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.stats.retries += 1;
                    self.stats.backoff_us = self
                        .stats
                        .backoff_us
                        .saturating_add(self.policy.backoff_us(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Raw block write through the retry policy.
    fn write_raw(&mut self, slot: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        let disk = self.slot_to_disk[slot];
        let mut attempt = 0usize;
        loop {
            match self.backend.write_block(disk, block, data) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.stats.retries += 1;
                    self.stats.backoff_us = self
                        .stats
                        .backoff_us
                        .saturating_add(self.policy.backoff_us(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one cell with full checking. `None` means the cell must be
    /// served through parity (slot down, sector dead, retries exhausted,
    /// or checksum mismatch); the error bookkeeping has already happened.
    fn read_cell(&mut self, stripe: usize, cell: Cell) -> Option<Vec<u8>> {
        let slot = self.slot_of(stripe, cell.col);
        let block = self.block_of(stripe, cell.row);
        if !self.block_readable(slot, block) {
            return None;
        }
        match self.read_raw(slot, block) {
            Ok(buf) => {
                if crc32(&buf) == self.crc[slot][block] {
                    Some(buf)
                } else {
                    self.stats.checksum_catches += 1;
                    self.record_error(slot);
                    None
                }
            }
            Err(e) => {
                self.note_hard_error(slot, &e);
                None
            }
        }
    }

    /// Fetch `wanted` cells of one stripe into a scratch stripe, serving
    /// unreadable cells through parity reconstruction. The scratch holds
    /// valid bytes for every wanted cell plus whatever survivors the
    /// recovery read along the way.
    fn fetch_cells(
        &mut self,
        stripe: usize,
        wanted: &BTreeSet<Cell>,
        count_degraded: bool,
    ) -> Result<Stripe, ArrayError> {
        let mut scratch = Stripe::zeroed(&self.layout, self.block_size);
        let mut missing: BTreeSet<Cell> = BTreeSet::new();
        for &cell in wanted {
            match self.read_cell(stripe, cell) {
                Some(buf) => scratch.block_mut(cell).copy_from_slice(&buf),
                None => {
                    missing.insert(cell);
                }
            }
        }
        if missing.is_empty() {
            return Ok(scratch);
        }
        if count_degraded {
            self.stats.degraded_reads += 1;
        }

        // Column-granular erasure set: every slot that cannot serve this
        // whole stripe, plus the columns of the cells that just failed.
        let mut erased_cols: BTreeSet<usize> = (0..self.layout.disks())
            .filter(|&s| !self.slot_serves_stripe(s, stripe))
            .map(|s| self.col_of(stripe, s))
            .collect();
        for c in &missing {
            erased_cols.insert(c.col);
        }
        let mut loaded: BTreeSet<Cell> = wanted.difference(&missing).copied().collect();

        // Re-plan whenever reading a survivor surfaces a new failure. The
        // compiled subprogram (and its surviving-read list) comes from the
        // schedule cache keyed on (erased columns, missing cells): a
        // stable failure pattern — the steady state of a dead disk or a
        // long rebuild — plans and compiles only on its first read.
        'replan: loop {
            // Every wanted cell in an erased column is observable, not just
            // the cells that actually failed: this read returns them from
            // the scratch stripe after the program runs, and the optimizer
            // is free to recycle any non-output erased cell as a scratch
            // host. Declaring them keeps their reconstructed bytes intact.
            let observable: BTreeSet<Cell> = wanted
                .iter()
                .copied()
                .filter(|c| erased_cols.contains(&c.col))
                .collect();
            let compiled = self
                .schedules
                .recovery_subprogram(&self.layout, erased_cols.iter().copied(), &observable)
                .map_err(|_| self.too_many())?;
            for &cell in compiled.reads.iter() {
                if loaded.contains(&cell) {
                    continue;
                }
                match self.read_cell(stripe, cell) {
                    Some(buf) => {
                        scratch.block_mut(cell).copy_from_slice(&buf);
                        loaded.insert(cell);
                    }
                    None => {
                        erased_cols.insert(cell.col);
                        continue 'replan;
                    }
                }
            }
            compiled.program.run(&mut scratch);
            break;
        }

        // Read-repair: a cell that failed on an otherwise healthy slot
        // (checksum catch, bad sector) is rewritten in place with its
        // reconstructed content — drives remap on write.
        let repairable: Vec<Cell> = missing
            .iter()
            .copied()
            .filter(|c| self.state[self.slot_of(stripe, c.col)] == SlotState::Healthy)
            .collect();
        for cell in repairable {
            let slot = self.slot_of(stripe, cell.col);
            let block = self.block_of(stripe, cell.row);
            let data = scratch.snapshot(cell);
            match self.write_raw(slot, block, &data) {
                Ok(()) => {
                    self.crc[slot][block] = crc32(&data);
                    self.stats.read_repairs += 1;
                }
                Err(e) => self.note_hard_error(slot, &e),
            }
        }
        Ok(scratch)
    }

    /// Read `count` logical elements starting at `start`, through retries,
    /// checksum catches, sector failures, dead disks, and in-progress
    /// rebuilds.
    pub fn read(&mut self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.locate(start)?;
        self.locate(start + count - 1)?;
        let mut out = Vec::with_capacity(count * self.block_size);
        let mut element = start;
        let mut remaining = count;
        while remaining > 0 {
            let (t, within) = self.locate(element).expect("range checked");
            let room = self.layout.data_len() - within;
            let chunk = room.min(remaining);
            let wanted: BTreeSet<Cell> = (within..within + chunk)
                .map(|i| self.layout.logical_to_cell(i))
                .collect();
            let scratch = self.fetch_cells(t, &wanted, true)?;
            for i in within..within + chunk {
                out.extend_from_slice(scratch.block(self.layout.logical_to_cell(i)));
            }
            self.stats.element_reads += chunk as u64;
            element += chunk;
            remaining -= chunk;
        }
        Ok(out)
    }

    /// Write `bytes` (a multiple of the block size) starting at logical
    /// element `start`. Full-stripe read-modify-write: each touched
    /// stripe's data is fetched (through parity if degraded), modified,
    /// re-encoded, and written back — so writes work while degraded and
    /// mid-rebuild. A write spanning several stripes batches the
    /// re-encodes through [`encode_stripes_arena`] on the global worker
    /// pool: one cached *fused* program replayed tile-major over the whole
    /// batch, job buffers drawn from the array's own arena — which is what
    /// lets a server batch many queued puts into one pooled encode without
    /// steady-state allocation.
    ///
    /// [`encode_stripes_arena`]: dcode_codec::encode_stripes_arena
    pub fn write(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError> {
        assert!(
            bytes.len() % self.block_size == 0,
            "write length must be a multiple of the block size"
        );
        let count = bytes.len() / self.block_size;
        if count == 0 {
            return Ok(());
        }
        self.locate(start)?;
        self.locate(start + count - 1)?;

        // Split the range into per-stripe segments.
        let mut segments: Vec<(usize, usize, usize, usize)> = Vec::new(); // (stripe, within, chunk, offset)
        let mut offset = 0;
        let mut element = start;
        while offset < count {
            let (t, within) = self.locate(element).expect("range checked");
            let chunk = (self.layout.data_len() - within).min(count - offset);
            segments.push((t, within, chunk, offset));
            offset += chunk;
            element += chunk;
        }

        // Fetch-and-patch every touched stripe, then re-encode the whole
        // batch in one pooled call, then persist. Segments are disjoint
        // stripes, so the phases commute with the sequential order.
        let mut scratches = Vec::with_capacity(segments.len());
        for &(t, within, chunk, off) in &segments {
            let mut scratch = self.fetch_and_patch(
                t,
                within,
                chunk,
                &bytes[off * self.block_size..(off + chunk) * self.block_size],
            )?;
            if segments.len() == 1 {
                // Single stripe: encode inline, skip the batching machinery.
                self.schedules
                    .encode_program(&self.layout)
                    .run(&mut scratch);
            }
            scratches.push(scratch);
        }
        if segments.len() > 1 {
            let program = self.schedules.encode_program(&self.layout);
            let threads = minipool::effective_parallelism(scratches.len());
            dcode_codec::encode_stripes_arena(
                &program,
                &mut scratches,
                minipool::global(),
                threads,
                &mut self.encode_arena,
            );
        }
        for (&(t, within, chunk, _), scratch) in segments.iter().zip(&scratches) {
            if self.journal.is_some() {
                self.persist_segment_journaled(t, within, chunk, scratch);
            } else {
                self.persist_segment(t, within, chunk, scratch);
            }
        }
        Ok(())
    }

    /// Fetch one stripe's full data (through parity if degraded) and patch
    /// `chunk` elements starting at logical position `within`.
    fn fetch_and_patch(
        &mut self,
        stripe: usize,
        within: usize,
        chunk: usize,
        bytes: &[u8],
    ) -> Result<Stripe, ArrayError> {
        let all_data: BTreeSet<Cell> = self.layout.data_cells().iter().copied().collect();
        let mut scratch = self.fetch_cells(stripe, &all_data, true)?;
        for i in 0..chunk {
            let cell = self.layout.logical_to_cell(within + i);
            scratch
                .block_mut(cell)
                .copy_from_slice(&bytes[i * self.block_size..(i + 1) * self.block_size]);
        }
        Ok(scratch)
    }

    /// Persist a re-encoded stripe: the modified data cells plus every
    /// (recomputed) parity cell.
    fn persist_segment(&mut self, stripe: usize, within: usize, chunk: usize, scratch: &Stripe) {
        let mut targets: Vec<Cell> = (within..within + chunk)
            .map(|i| self.layout.logical_to_cell(i))
            .collect();
        targets.extend(self.layout.parity_cells());
        for cell in targets {
            let data = scratch.snapshot(cell);
            self.store_cell(stripe, cell, &data);
        }
        self.stats.element_writes += chunk as u64;
    }

    /// Journaled [`persist_segment`](ResilientArray::persist_segment):
    /// commit an intent record (payload → header → journal-disk flush),
    /// apply the data cells, apply the parity cells, flush every touched
    /// disk, then retire the record (tombstone → flush). The write is
    /// only acknowledged — [`write`](ResilientArray::write) only returns —
    /// after every record of the call is retired, so an acknowledged
    /// write is durable and a crashed one is replayable.
    fn persist_segment_journaled(
        &mut self,
        stripe: usize,
        within: usize,
        chunk: usize,
        scratch: &Stripe,
    ) {
        let data_targets: Vec<Cell> = (within..within + chunk)
            .map(|i| self.layout.logical_to_cell(i))
            .collect();
        let parity_targets: Vec<Cell> = self.layout.parity_cells().collect();

        let record = self.build_record(stripe, &data_targets, &parity_targets, scratch);
        let seq = record.seq;
        let jdisk = self.journal_append(&record);

        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for &cell in &data_targets {
            if self.store_cell(stripe, cell, &scratch.snapshot(cell)) {
                touched.insert(self.slot_to_disk[self.slot_of(stripe, cell.col)]);
            }
        }
        // Planted bug for the harness self-test: retiring here re-opens
        // the write hole between the data and parity writes.
        let mutated = self.mutation == Some(JournalMutation::RetireBeforeParity);
        if mutated {
            self.journal_retire(jdisk, seq);
        }
        for &cell in &parity_targets {
            if self.store_cell(stripe, cell, &scratch.snapshot(cell)) {
                touched.insert(self.slot_to_disk[self.slot_of(stripe, cell.col)]);
            }
        }
        for disk in touched {
            let _ = self.backend.flush(disk);
        }
        if !mutated {
            self.journal_retire(jdisk, seq);
        }
        self.stats.element_writes += chunk as u64;
    }

    /// Build the intent record protecting one segment. Healthy stripes
    /// get a [`RecordMode::ParityIntent`] record (data CRCs + parity
    /// contents); a degraded stripe or an active rebuild forces
    /// [`RecordMode::Redo`] (full contents), because a partially applied
    /// degraded write changes the failed slot's parity-implied content —
    /// only re-forcing the whole intent restores consistency.
    fn build_record(
        &mut self,
        stripe: usize,
        data_targets: &[Cell],
        parity_targets: &[Cell],
        scratch: &Stripe,
    ) -> IntentRecord {
        let healthy = self.state.iter().all(|&s| s == SlotState::Healthy) && self.rebuild.is_none();
        let mut entries = Vec::with_capacity(data_targets.len() + parity_targets.len());
        for &cell in data_targets {
            let content = scratch.snapshot(cell);
            entries.push(RecordEntry {
                cell,
                crc: crc32(&content),
                payload: (!healthy).then_some(content),
            });
        }
        for &cell in parity_targets {
            let content = scratch.snapshot(cell);
            entries.push(RecordEntry {
                cell,
                crc: crc32(&content),
                payload: Some(content),
            });
        }
        let seq = self.jseq;
        self.jseq += 1;
        IntentRecord {
            seq,
            stripe,
            mode: if healthy {
                RecordMode::ParityIntent
            } else {
                RecordMode::Redo
            },
            entries,
        }
    }

    /// Commit `record` to a journal slot: payload blocks, then the
    /// header, then flush — the record is only committed once the flush
    /// completes, so a crash anywhere earlier leaves a torn (discarded)
    /// record and an untouched stripe. The slot rotates with the
    /// sequence number and probes past disks that refuse the write;
    /// if no disk accepts it the mutation proceeds unjournaled (counted
    /// in [`ResilientStats::journal_skips`]).
    fn journal_append(&mut self, record: &IntentRecord) -> Option<usize> {
        let spec = self.journal.clone()?;
        for probe in 0..spec.disks {
            let disk = (record.seq as usize + probe) % spec.disks;
            if self.try_journal_write(disk, &spec, record).is_ok() {
                self.stats.journal_records += 1;
                return Some(disk);
            }
        }
        self.stats.journal_skips += 1;
        None
    }

    fn try_journal_write(
        &mut self,
        disk: usize,
        spec: &JournalSpec,
        record: &IntentRecord,
    ) -> Result<(), DiskError> {
        let payloads: Vec<Vec<u8>> = record
            .payload_entries()
            .map(|e| e.payload.clone().expect("payload entry"))
            .collect();
        for (k, content) in payloads.iter().enumerate() {
            self.raw_disk_write(disk, spec.payload_start() + k, content)?;
        }
        let header = record.encode_header(spec);
        let bs = self.block_size;
        for (k, chunk) in header.chunks(bs).enumerate() {
            self.raw_disk_write(disk, spec.header_start() + k, chunk)?;
        }
        self.backend.flush(disk)
    }

    /// Retire a committed record: tombstone its header, flush. A crash
    /// before the tombstone is durable merely replays the record again —
    /// harmless, because replay is idempotent.
    fn journal_retire(&mut self, jdisk: Option<usize>, seq: u64) {
        let Some(disk) = jdisk else { return };
        let Some(spec) = self.journal.clone() else {
            return;
        };
        let tomb = IntentRecord::encode_tombstone(seq, self.block_size);
        if self
            .raw_disk_write(disk, spec.header_start(), &tomb)
            .is_ok()
            && self.backend.flush(disk).is_ok()
        {
            self.stats.journal_retires += 1;
        }
    }

    /// Physical-disk block write through the retry policy (journal I/O
    /// addresses disks directly — the journal region is outside the
    /// slot/rotation mapping).
    fn raw_disk_write(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        let mut attempt = 0usize;
        loop {
            match self.backend.write_block(disk, block, data) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.stats.retries += 1;
                    self.stats.backoff_us = self
                        .stats
                        .backoff_us
                        .saturating_add(self.policy.backoff_us(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Physical-disk block read through the retry policy.
    fn raw_disk_read(&mut self, disk: usize, block: usize) -> Result<Vec<u8>, DiskError> {
        let mut buf = vec![0u8; self.block_size];
        let mut attempt = 0usize;
        loop {
            match self.backend.read_block(disk, block, &mut buf) {
                Ok(()) => return Ok(buf),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.stats.retries += 1;
                    self.stats.backoff_us = self
                        .stats
                        .backoff_us
                        .saturating_add(self.policy.backoff_us(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Write one cell's content where possible and record its expected
    /// CRC everywhere. A failed slot keeps only the CRC (the content is
    /// implied by parity and materializes at rebuild); a hard write error
    /// is recorded but not surfaced — parity still protects the data, and
    /// the stale on-medium block is caught by checksum at next read.
    /// Returns whether the medium was actually written (so the journaled
    /// path knows which disks to flush).
    fn store_cell(&mut self, stripe: usize, cell: Cell, data: &[u8]) -> bool {
        let slot = self.slot_of(stripe, cell.col);
        let block = self.block_of(stripe, cell.row);
        self.crc[slot][block] = crc32(data);
        let writable = match self.state[slot] {
            SlotState::Healthy => true,
            SlotState::Failed => false,
            SlotState::Rebuilding => self
                .rebuild
                .as_ref()
                .is_some_and(|r| r.slot == slot && block < r.next_block),
        };
        if !writable {
            return false;
        }
        match self.write_raw(slot, block, data) {
            Ok(()) => true,
            Err(e) => {
                self.note_hard_error(slot, &e);
                false
            }
        }
    }

    /// Scan every record slot, discard torn records, and re-apply
    /// committed ones in sequence order — the mount-time half of the
    /// write-hole protocol. Runs before the CRC table is seeded, so all
    /// I/O here is raw.
    fn journal_replay(&mut self) -> Result<ReplaySummary, DiskError> {
        let Some(spec) = self.journal.clone() else {
            return Ok(ReplaySummary::default());
        };
        let bs = self.block_size;
        let mut summary = ReplaySummary::default();
        let mut live: Vec<(usize, IntentRecord)> = Vec::new();
        for disk in 0..spec.disks {
            summary.scanned += 1;
            let mut header = vec![0u8; spec.header_blocks * bs];
            let mut readable = true;
            for hb in 0..spec.header_blocks {
                match self.raw_disk_read(disk, spec.header_start() + hb) {
                    Ok(buf) => header[hb * bs..(hb + 1) * bs].copy_from_slice(&buf),
                    Err(_) => {
                        readable = false;
                        break;
                    }
                }
            }
            if !readable {
                summary.discarded += 1;
                continue;
            }
            match IntentRecord::decode_header(&header, &spec) {
                SlotHeader::Empty => {}
                SlotHeader::Tombstone(seq) => self.jseq = self.jseq.max(seq + 1),
                SlotHeader::Torn => {
                    summary.discarded += 1;
                    self.discard_slot(disk, &spec);
                }
                SlotHeader::Record(mut rec, payload_crc) => {
                    self.jseq = self.jseq.max(rec.seq + 1);
                    if self.load_record_payload(disk, &spec, &mut rec, payload_crc)
                        && self.record_in_bounds(&rec)
                    {
                        live.push((disk, rec));
                    } else {
                        summary.discarded += 1;
                        self.discard_slot(disk, &spec);
                    }
                }
            }
        }
        // Apply in commit order — with one live record per mutation this
        // is usually a single entry, but a multi-segment write crashed
        // mid-call can leave several.
        live.sort_by_key(|(_, r)| r.seq);
        let mut degraded = false;
        for (disk, rec) in live {
            degraded |= self.apply_record(&rec);
            self.journal_retire(Some(disk), rec.seq);
            summary.replayed += 1;
        }
        summary.outcome = if degraded {
            ReplayOutcome::Degraded
        } else if summary.replayed > 0 {
            ReplayOutcome::Replayed
        } else {
            ReplayOutcome::Clean
        };
        Ok(summary)
    }

    /// Tombstone a slot holding a torn or invalid record so the next
    /// mount does not re-scan it.
    fn discard_slot(&mut self, disk: usize, spec: &JournalSpec) {
        let tomb = IntentRecord::encode_tombstone(0, self.block_size);
        if self
            .raw_disk_write(disk, spec.header_start(), &tomb)
            .is_ok()
        {
            let _ = self.backend.flush(disk);
        }
    }

    /// Read a decoded record's payload blocks into its placeholder
    /// entries and verify them against the header's payload CRC.
    fn load_record_payload(
        &mut self,
        disk: usize,
        spec: &JournalSpec,
        rec: &mut IntentRecord,
        expect_crc: u32,
    ) -> bool {
        let mut all = Vec::new();
        let mut k = 0;
        for e in &mut rec.entries {
            if e.payload.is_none() {
                continue;
            }
            match self.raw_disk_read(disk, spec.payload_start() + k) {
                Ok(buf) => {
                    all.extend_from_slice(&buf);
                    e.payload = Some(buf);
                }
                Err(_) => return false,
            }
            k += 1;
        }
        crc32(&all) == expect_crc
    }

    /// Structural validation of a decoded record against this array's
    /// geometry — a record from a mismatched mount must be discarded, not
    /// panicked on.
    fn record_in_bounds(&self, rec: &IntentRecord) -> bool {
        rec.stripe < self.n_stripes
            && rec.entries.iter().all(|e| {
                let payload_ok = match &e.payload {
                    Some(p) => p.len() == self.block_size,
                    None => true,
                };
                e.cell.row < self.rows() && e.cell.col < self.layout.disks() && payload_ok
            })
    }

    /// Re-apply one committed record. Idempotent: records carry content
    /// (or content CRCs), never deltas. Returns whether the replay had to
    /// degrade (unverifiable data cells, unwritable disks).
    fn apply_record(&mut self, rec: &IntentRecord) -> bool {
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        let mut degraded = false;
        let to_write: Vec<(Cell, Vec<u8>)> = match rec.mode {
            // Redo: force every journaled block. Failed slots are skipped
            // (their content is implied by the parity being forced here).
            RecordMode::Redo => rec
                .entries
                .iter()
                .filter_map(|e| e.payload.clone().map(|p| (e.cell, p)))
                .collect(),
            // ParityIntent: decide between the journaled parity and a
            // recompute by checking the on-disk data cells.
            RecordMode::ParityIntent => {
                let mut all_match = true;
                let mut unreadable = false;
                for e in rec.entries.iter().filter(|e| e.payload.is_none()) {
                    let slot = self.slot_of(rec.stripe, e.cell.col);
                    let block = self.block_of(rec.stripe, e.cell.row);
                    if self.state[slot] != SlotState::Healthy {
                        unreadable = true;
                        continue;
                    }
                    match self.read_raw(slot, block) {
                        Ok(buf) => {
                            if crc32(&buf) != e.crc {
                                all_match = false;
                            }
                        }
                        Err(_) => unreadable = true,
                    }
                }
                let journaled: Vec<(Cell, Vec<u8>)> = rec
                    .entries
                    .iter()
                    .filter_map(|e| e.payload.clone().map(|p| (e.cell, p)))
                    .collect();
                if all_match || unreadable {
                    // All data landed before the crash (write the parity
                    // the record intended), or we cannot tell (write it
                    // anyway and report the mount degraded).
                    degraded |= unreadable;
                    journaled
                } else {
                    // The crash interrupted the data writes. The stripe
                    // holds a mix of old and new data — both fine, the
                    // write was never acknowledged — so make the parity
                    // match whatever is actually there.
                    match self.recompute_parity(rec.stripe, &journaled) {
                        Some(fresh) => fresh,
                        None => {
                            degraded = true;
                            journaled
                        }
                    }
                }
            }
        };
        for (cell, content) in to_write {
            let slot = self.slot_of(rec.stripe, cell.col);
            if self.state[slot] == SlotState::Failed {
                continue;
            }
            let block = self.block_of(rec.stripe, cell.row);
            if self.write_raw(slot, block, &content).is_ok() {
                self.crc[slot][block] = crc32(&content);
                touched.insert(self.slot_to_disk[slot]);
            } else {
                degraded = true;
            }
        }
        for disk in touched {
            let _ = self.backend.flush(disk);
        }
        degraded
    }

    /// Recompute the parity cells named in `parity` from the data
    /// actually on disk. `None` if any data cell cannot be read directly.
    fn recompute_parity(
        &mut self,
        stripe: usize,
        parity: &[(Cell, Vec<u8>)],
    ) -> Option<Vec<(Cell, Vec<u8>)>> {
        let mut scratch = Stripe::zeroed(&self.layout, self.block_size);
        let data_cells: Vec<Cell> = self.layout.data_cells().to_vec();
        for cell in data_cells {
            let slot = self.slot_of(stripe, cell.col);
            if self.state[slot] != SlotState::Healthy {
                return None;
            }
            let block = self.block_of(stripe, cell.row);
            match self.read_raw(slot, block) {
                Ok(buf) => scratch.block_mut(cell).copy_from_slice(&buf),
                Err(_) => return None,
            }
        }
        self.schedules
            .encode_program(&self.layout)
            .run(&mut scratch);
        Some(
            parity
                .iter()
                .map(|(c, _)| (*c, scratch.snapshot(*c)))
                .collect(),
        )
    }

    /// Persist the journal's mount state (mount counter + last replay
    /// summary) to disk 0's state block. Best-effort: the state block is
    /// reporting, not correctness.
    fn journal_write_state(&mut self, summary: ReplaySummary) {
        let Some(spec) = self.journal.clone() else {
            return;
        };
        let block = spec.state_block();
        let mounts = self
            .raw_disk_read(0, block)
            .ok()
            .and_then(|buf| JournalState::decode(&buf))
            .map_or(0, |s| s.mounts);
        let state = JournalState {
            mounts: mounts + 1,
            last: summary,
        };
        let buf = state.encode(self.block_size);
        if self.raw_disk_write(0, block, &buf).is_ok() {
            let _ = self.backend.flush(0);
        }
    }

    /// Advance the active rebuild by up to `max_blocks` reconstructed
    /// blocks. Returns `true` when no rebuild remains active (completed,
    /// aborted, or none was running). Interleave with reads/writes: the
    /// watermark keeps every read correct mid-rebuild.
    pub fn rebuild_step(&mut self, max_blocks: usize) -> Result<bool, ArrayError> {
        for _ in 0..max_blocks {
            let Some(r) = &self.rebuild else {
                return Ok(true);
            };
            let (slot, block) = (r.slot, r.next_block);
            let stripe = block / self.rows();
            let row = block % self.rows();
            let cell = Cell::new(row, self.col_of(stripe, slot));
            let mut wanted = BTreeSet::new();
            wanted.insert(cell);
            let scratch = self.fetch_cells(stripe, &wanted, false)?;
            let data = scratch.snapshot(cell);
            match self.write_raw(slot, block, &data) {
                Ok(()) => {
                    self.crc[slot][block] = crc32(&data);
                    self.stats.rebuilt_blocks += 1;
                    let total = self.total_blocks();
                    if let Some(r) = &mut self.rebuild {
                        r.next_block += 1;
                        if r.next_block >= total {
                            let done = self.rebuild.take().expect("just checked");
                            self.state[done.slot] = SlotState::Healthy;
                            self.errors[done.slot] = 0;
                            self.stats.rebuilds_completed += 1;
                            // Another slot may have failed while this
                            // rebuild ran; chain onto the next spare.
                            self.try_attach_spare();
                            return Ok(self.rebuild.is_none());
                        }
                    }
                }
                Err(e) => {
                    // The spare itself is misbehaving. A hard failure
                    // aborts this rebuild (and may chain onto the next
                    // spare); a transient exhaustion retries the same
                    // block on the next call.
                    self.note_hard_error(slot, &e);
                    if self.state[slot] == SlotState::Failed || self.rebuild.is_none() {
                        return Ok(self.rebuild.is_none());
                    }
                }
            }
        }
        Ok(self.rebuild.is_none())
    }

    /// One full read-verify pass over every cell of every stripe — data
    /// *and* parity. Checksum mismatches and bad sectors surface as
    /// degraded reads and are repaired in place by the read-repair path.
    /// Every stripe read fully *direct* additionally gets its parity
    /// recomputed from the data and compared block for block — the check
    /// that catches a write hole (data and parity individually valid but
    /// mutually inconsistent), which the CRC layer alone cannot see after
    /// an attach reseeded the CRCs from the medium. Mismatched parity is
    /// rewritten in place. The summary reports what the pass found, as
    /// deltas of the array's counters. This is what a scrubbing server
    /// runs against each shard.
    pub fn scrub_pass(&mut self) -> Result<ScrubSummary, ArrayError> {
        let before = self.stats.clone();
        let all_cells: BTreeSet<Cell> = self
            .layout
            .data_cells()
            .iter()
            .copied()
            .chain(self.layout.parity_cells())
            .collect();
        let parity_cells: Vec<Cell> = self.layout.parity_cells().collect();
        let mut parity_checked = 0u64;
        let mut parity_mismatches = 0u64;
        let mut parity_repairs = 0u64;
        for stripe in 0..self.n_stripes {
            let degraded_before = self.stats.degraded_reads;
            let mut scratch = self.fetch_cells(stripe, &all_cells, true)?;
            // Parity is only *verifiable* when every cell came straight
            // off the medium: a degraded fetch reconstructs the missing
            // cells *from* the parity, so recomputing it back would be
            // circular and trivially clean.
            let direct = self.stats.degraded_reads == degraded_before
                && (0..self.layout.disks()).all(|s| self.slot_serves_stripe(s, stripe));
            if !direct {
                continue;
            }
            parity_checked += 1;
            let was: Vec<(Cell, Vec<u8>)> = parity_cells
                .iter()
                .map(|&c| (c, scratch.snapshot(c)))
                .collect();
            self.schedules
                .encode_program(&self.layout)
                .run(&mut scratch);
            for (cell, old) in was {
                let fresh = scratch.snapshot(cell);
                if fresh != old {
                    parity_mismatches += 1;
                    if self.store_cell(stripe, cell, &fresh) {
                        parity_repairs += 1;
                    }
                }
            }
        }
        Ok(ScrubSummary {
            stripes: self.n_stripes,
            checksum_catches: self.stats.checksum_catches - before.checksum_catches,
            degraded_reads: self.stats.degraded_reads - before.degraded_reads,
            read_repairs: self.stats.read_repairs - before.read_repairs,
            parity_checked,
            parity_mismatches,
            parity_repairs,
        })
    }
}

/// What one [`ResilientArray::scrub_pass`] found and fixed.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct ScrubSummary {
    /// Stripes read end to end.
    pub stripes: usize,
    /// Silent corruptions caught by CRC during the pass.
    pub checksum_catches: u64,
    /// Stripes (fetches) that needed parity reconstruction.
    pub degraded_reads: u64,
    /// Blocks rewritten in place with reconstructed content.
    pub read_repairs: u64,
    /// Stripes whose parity was recomputed from data and compared (only
    /// stripes read fully direct are verifiable).
    pub parity_checked: u64,
    /// Parity blocks inconsistent with their stripe's data — a write
    /// hole, if nothing else already explained it.
    pub parity_mismatches: u64,
    /// Mismatched parity blocks rewritten with recomputed content.
    pub parity_repairs: u64,
}

impl<B: DiskBackend> ElementIo for ResilientArray<B> {
    fn capacity_elements(&self) -> usize {
        ResilientArray::capacity_elements(self)
    }

    fn element_size(&self) -> usize {
        self.block_size
    }

    fn read_elements(&mut self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError> {
        self.read(start, count)
    }

    fn write_elements(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError> {
        self.write(start, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;
    use dcode_faults::{FaultInjector, FaultPlan, MemBackend};

    fn mem_array(p: usize, stripes: usize, spares: usize) -> ResilientArray<MemBackend> {
        let layout = dcode(p).unwrap();
        let backend = MemBackend::new(layout.disks() + spares, stripes * layout.rows(), 16);
        ResilientArray::format(
            layout,
            16,
            stripes,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn roundtrip_and_unaligned_reads() {
        let mut a = mem_array(5, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        let mid = a.read(11, 9).unwrap();
        assert_eq!(mid, &data[11 * 16..20 * 16]);
    }

    #[test]
    fn checksum_catch_converts_rot_into_degraded_read_and_repairs() {
        let mut a = mem_array(5, 3, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Rot a byte on the medium beneath the checksums.
        let disk = a.slot_disk(1);
        a.backend_mut().disk_bytes_mut(disk)[5] ^= 0x40;
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().checksum_catches, 1);
        assert_eq!(a.stats().degraded_reads, 1);
        assert_eq!(a.stats().read_repairs, 1);
        // The repair rewrote the block: a second pass is clean.
        let catches = a.stats().checksum_catches;
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().checksum_catches, catches);
    }

    #[test]
    fn pair_rot_in_partially_corrupt_columns_returns_clean_data() {
        // Two rotten blocks on different disks force a two-column erasure
        // whose columns still hold correctly-read, wanted survivors. Those
        // survivors are observable outputs of the recovery subprogram, so
        // the optimizer must not recycle their cells as scratch hosts —
        // RDP's subprograms reuse scratch aggressively, which is exactly
        // the shape that once leaked a foreign tenant's bytes into a read.
        let layout = dcode_baselines::registry::build(dcode_baselines::CodeId::Rdp, 13).unwrap();
        let backend = MemBackend::new(layout.disks(), layout.rows(), 16);
        let mut a = ResilientArray::format(
            layout,
            16,
            1,
            RotationScheme::None,
            backend,
            RetryPolicy::default(),
            4,
        );
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Rot the deepest data block of the first two columns that carry
        // at least two data cells each (so each erased column keeps wanted
        // survivors, and the recovery chain is long enough for the scratch
        // allocator to collapse slots). RotationScheme::None maps
        // column -> disk, row -> block.
        let grid = a.layout().grid();
        let mut hit = Vec::new();
        for col in 0..grid.cols {
            let data_cells: Vec<Cell> = (0..grid.rows)
                .map(|row| Cell::new(row, col))
                .filter(|&c| a.layout().logical_of(c).is_some())
                .collect();
            if data_cells.len() >= 2 {
                hit.push(*data_cells.last().unwrap());
            }
            if hit.len() == 2 {
                break;
            }
        }
        assert_eq!(hit.len(), 2, "need two partially-corruptible columns");
        for cell in hit {
            a.backend_mut().disk_bytes_mut(cell.col)[cell.row * 16 + 3] ^= 0x01;
        }
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().checksum_catches, 2);
    }

    #[test]
    fn retries_exhaust_then_degrade() {
        let layout = dcode(5).unwrap();
        let mut plan = FaultPlan::quiet(11);
        plan.p_transient_read = 1.0; // every read fails, forever
        let backend =
            FaultInjector::new(MemBackend::new(layout.disks(), 2 * layout.rows(), 16), plan);
        let mut a = ResilientArray::format(
            layout,
            16,
            2,
            RotationScheme::None,
            backend,
            RetryPolicy {
                max_retries: 2,
                backoff_base_us: 100,
            },
            1000, // never auto-fail in this test
        );
        // With every disk refusing reads, recovery is impossible.
        assert!(a.read(0, 1).is_err());
        assert!(a.stats().retries >= 2);
        assert!(a.stats().backoff_us >= 300); // 100 + 200
    }

    #[test]
    fn pathological_retry_policy_saturates_instead_of_panicking() {
        // Regression: backoff accounting used `base << attempt`, which
        // panics in debug (wraps in release) once attempt reaches 64. A
        // user is free to configure max_retries ≥ 64; the charge must
        // saturate, not overflow.
        let layout = dcode(5).unwrap();
        let mut plan = FaultPlan::quiet(7);
        plan.p_transient_read = 1.0; // every read fails, forever
        let backend = FaultInjector::new(MemBackend::new(layout.disks(), layout.rows(), 16), plan);
        let mut a = ResilientArray::format(
            layout,
            16,
            1,
            RotationScheme::None,
            backend,
            RetryPolicy {
                max_retries: 80,
                backoff_base_us: u64::MAX / 2,
            },
            usize::MAX, // never auto-fail: drive every retry attempt
        );
        // Reads exhaust all 80 retries on every disk without panicking,
        // and the accumulated charge saturates rather than wrapping.
        assert!(a.read(0, 1).is_err());
        assert!(a.stats().retries >= 80);
        assert_eq!(a.stats().backoff_us, u64::MAX);

        // The per-attempt charge itself caps at u64::MAX past the width.
        let policy = RetryPolicy {
            max_retries: 100,
            backoff_base_us: 3,
        };
        assert_eq!(policy.backoff_us(0), 3);
        assert_eq!(policy.backoff_us(1), 6);
        assert_eq!(policy.backoff_us(63), u64::MAX); // 3 × 2^63 saturates
        assert_eq!(policy.backoff_us(64), u64::MAX);
        assert_eq!(policy.backoff_us(usize::MAX), u64::MAX);
    }

    #[test]
    fn threshold_auto_fails_and_attaches_spare() {
        let mut a = mem_array(5, 3, 1);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Corrupt many blocks of slot 2's disk: each read is a checksum
        // catch; past the threshold (4) the slot fails and the spare
        // attaches.
        let disk = a.slot_disk(2);
        let rows = a.layout().rows();
        for b in 0..3 * rows {
            a.backend_mut().disk_bytes_mut(disk)[b * 16] ^= 0xFF;
        }
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().auto_fails, 1);
        assert_eq!(a.stats().spares_attached, 1);
        assert_eq!(a.slot_states()[2], SlotState::Rebuilding);
        assert_eq!(a.slot_disk(2), 5); // remapped to the spare
                                       // Drive the rebuild home; everything is healthy and correct.
        while !a.rebuild_step(8).unwrap() {}
        assert_eq!(a.slot_states()[2], SlotState::Healthy);
        assert_eq!(a.stats().rebuilds_completed, 1);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
    }

    #[test]
    fn reads_and_writes_served_mid_rebuild() {
        let mut a = mem_array(7, 6, 1);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        a.fail_disk(3).unwrap();
        assert_eq!(a.slot_states()[3], SlotState::Rebuilding);
        // Step the rebuild partway: the watermark sits inside the array.
        a.rebuild_step(a.layout().rows() * 2).unwrap();
        let (_, done, total) = a.rebuild_progress().unwrap();
        assert!(done > 0 && done < total);
        // Reads are correct both below and above the watermark.
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        // A write mid-rebuild lands correctly too.
        let patch = vec![0xABu8; 3 * 16];
        a.write(10, &patch).unwrap();
        while !a.rebuild_step(16).unwrap() {}
        let mut expect = data;
        expect[10 * 16..13 * 16].copy_from_slice(&patch);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), expect);
    }

    #[test]
    fn steady_state_degraded_reads_stop_compiling() {
        let mut a = mem_array(7, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        a.fail_disk(2).unwrap();
        // Warm-up pass: every distinct (erasure, missing-set) pair this
        // workload can produce gets compiled and cached exactly once.
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        let warm = a.schedule_stats();
        assert!(warm.misses > 0, "warm-up should have compiled something");
        // Steady state: identical degraded reads are pure cache hits.
        for _ in 0..3 {
            assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        }
        let steady = a.schedule_stats();
        assert_eq!(
            steady.misses, warm.misses,
            "degraded reads kept compiling after warm-up"
        );
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn multi_stripe_writes_batch_through_the_pooled_encoder() {
        // A write spanning many stripes must land byte-identical to the
        // sequential path (the pooled batch encode is behaviorally
        // invisible), including while degraded.
        let mut a = mem_array(7, 8, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap(); // spans all 8 stripes in one call
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        a.fail_disk(2).unwrap();
        let patch = payload(a.capacity_bytes() - 3 * 16);
        a.write(3, &patch).unwrap(); // unaligned, degraded, multi-stripe
        let mut expect = data;
        expect[3 * 16..].copy_from_slice(&patch);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), expect);
    }

    #[test]
    fn scrub_pass_finds_and_repairs_rot_on_data_and_parity() {
        let mut a = mem_array(5, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Clean medium: a pass finds nothing.
        let clean = a.scrub_pass().unwrap();
        assert_eq!(clean.stripes, 4);
        assert_eq!(clean.checksum_catches, 0);
        assert_eq!(clean.read_repairs, 0);
        // Rot two blocks — one early (data region) and one in the last
        // row (parity rows live there for these codes).
        let disk = a.slot_disk(3);
        let rows = a.layout().rows();
        let bytes = a.backend_mut().disk_bytes_mut(disk);
        bytes[0] ^= 0x01;
        let last_block_off = (4 * rows - 1) * 16;
        bytes[last_block_off] ^= 0x80;
        let dirty = a.scrub_pass().unwrap();
        assert_eq!(dirty.checksum_catches, 2, "{dirty:?}");
        assert_eq!(dirty.read_repairs, 2, "{dirty:?}");
        // The repairs stuck: a third pass is clean and data is intact.
        let again = a.scrub_pass().unwrap();
        assert_eq!(again.checksum_catches, 0, "{again:?}");
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
    }

    #[test]
    fn attach_reopens_an_array_with_crcs_seeded_from_the_medium() {
        let layout = dcode(5).unwrap();
        let mut a = ResilientArray::format(
            layout.clone(),
            16,
            3,
            RotationScheme::PerStripe,
            MemBackend::new(layout.disks(), 3 * layout.rows(), 16),
            RetryPolicy::default(),
            4,
        );
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Steal the medium and re-open it cold, as a restarted server
        // shard would.
        let backend = std::mem::replace(a.backend_mut(), MemBackend::new(7, 15, 16));
        let mut b = ResilientArray::attach(
            layout,
            16,
            3,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
        .unwrap();
        assert_eq!(b.read(0, b.capacity_elements()).unwrap(), data);
        assert_eq!(b.stats().checksum_catches, 0, "seeded CRCs must match");
        assert_eq!(b.scrub_pass().unwrap().checksum_catches, 0);
    }

    #[test]
    fn degraded_writes_survive_double_failure() {
        let mut a = mem_array(7, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        a.fail_disk(1).unwrap();
        a.fail_disk(4).unwrap();
        let patch = vec![0x5Au8; 5 * 16];
        a.write(7, &patch).unwrap();
        let mut expect = data;
        expect[7 * 16..12 * 16].copy_from_slice(&patch);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), expect);
        // A third failure is beyond RAID-6.
        a.fail_disk(0).unwrap();
        assert!(matches!(
            a.read(0, 1),
            Err(ArrayError::TooManyFailures { .. })
        ));
    }

    fn journaled_mem_array(p: usize, stripes: usize) -> ResilientArray<MemBackend> {
        let layout = dcode(p).unwrap();
        let extra = crate::journal::journal_blocks_per_disk(&layout, 32);
        let backend = MemBackend::new(layout.disks(), stripes * layout.rows() + extra, 32);
        ResilientArray::format_journaled(
            layout,
            32,
            stripes,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
    }

    #[test]
    fn journaled_writes_roundtrip_and_count_records() {
        let mut a = journaled_mem_array(5, 3);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        // One record per touched stripe, all retired before write() acked.
        assert_eq!(a.stats().journal_records, 3);
        assert_eq!(a.stats().journal_retires, 3);
        assert_eq!(a.stats().journal_skips, 0);
        // The parity-verify scrub is clean on a consistent array.
        let scrub = a.scrub_pass().unwrap();
        assert_eq!(scrub.parity_checked, 3);
        assert_eq!(scrub.parity_mismatches, 0);
    }

    #[test]
    fn journaled_attach_replays_clean_shutdown_as_clean() {
        let layout = dcode(5).unwrap();
        let mut a = journaled_mem_array(5, 3);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        let backend = a.into_backend();
        let mut b = ResilientArray::attach_journaled(
            layout.clone(),
            32,
            3,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
        .unwrap();
        let replay = b.last_replay().expect("journaled attach records replay");
        assert_eq!(replay.outcome, ReplayOutcome::Clean);
        assert_eq!(replay.replayed, 0);
        assert_eq!(replay.scanned as usize, layout.disks());
        assert_eq!(b.read(0, b.capacity_elements()).unwrap(), data);
        // The state block counted both mounts (format + attach).
        let spec = b.journal().unwrap().clone();
        let scan = crate::journal::scan_journal(b.backend_mut(), &spec);
        assert_eq!(scan.state.expect("state block").mounts, 2);
        assert!(scan.live.is_empty());
    }

    #[test]
    fn scrub_detects_and_repairs_a_planted_write_hole() {
        // Forge the hole directly: flip a data byte on the medium *and*
        // reseed the CRC table via attach, so data and parity are each
        // individually "valid" but mutually inconsistent — invisible to
        // the CRC layer, visible only to the parity recompute.
        let layout = dcode(5).unwrap();
        let mut a = journaled_mem_array(5, 2);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        let disk = a.slot_disk(0);
        a.backend_mut().disk_bytes_mut(disk)[0] ^= 0x01;
        let backend = a.into_backend();
        let mut b = ResilientArray::attach_journaled(
            layout,
            32,
            2,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
        .unwrap();
        let dirty = b.scrub_pass().unwrap();
        assert_eq!(dirty.checksum_catches, 0, "the hole is CRC-invisible");
        assert!(dirty.parity_mismatches > 0, "{dirty:?}");
        assert_eq!(dirty.parity_mismatches, dirty.parity_repairs);
        // The repair rewrote the parity to match the on-disk data: the
        // array is consistent again (with the flipped byte as content).
        let again = b.scrub_pass().unwrap();
        assert_eq!(again.parity_mismatches, 0, "{again:?}");
    }

    #[test]
    fn sector_failure_degrades_only_that_element() {
        let layout = dcode(5).unwrap();
        let plan = FaultPlan::quiet(3);
        let backend =
            FaultInjector::new(MemBackend::new(layout.disks(), 3 * layout.rows(), 16), plan);
        let mut a = ResilientArray::format(
            layout,
            16,
            3,
            RotationScheme::None,
            backend,
            RetryPolicy::default(),
            100, // high threshold: the slot must NOT fail
        );
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Kill one sector on disk 0.
        a.backend_mut().mint_bad_sector(0, 0);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().degraded_reads, 1);
        assert_eq!(a.slot_states()[0], SlotState::Healthy);
        // Read-repair rewrote the sector (remap-on-write): clean now.
        let degraded = a.stats().degraded_reads;
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().degraded_reads, degraded);
    }
}
