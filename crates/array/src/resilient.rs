//! A fault-tolerant array over a [`DiskBackend`]: the layer that turns the
//! coding theory into a survivable storage device.
//!
//! The in-memory [`Array`](crate::Array) models the textbook failure mode —
//! a disk is present or absent. This array faces the failure modes real
//! RAID-6 deployments document (SD codes' disk+sector model, "Beyond RAID
//! 6"'s silent corruption): sectors die individually, writes tear, bits
//! rot, devices stall and then vanish. The machinery, bottom to top:
//!
//! * every block read passes through a [`RetryPolicy`] — bounded retries
//!   with exponential backoff *accounting* (virtual microseconds, never
//!   slept);
//! * every block carries a CRC32; a mismatch converts silent corruption
//!   into a detectable erasure, served through parity and then repaired
//!   in place (read-repair);
//! * a sector-level read failure degrades only the *elements* that need
//!   it: a [`plan_recovery`] subplan reconstructs the lost cells from the
//!   survivors, without failing the whole disk;
//! * a slot whose error count crosses the threshold auto-transitions to
//!   `Failed`, and a configured hot spare is attached automatically;
//! * rebuild onto the spare runs incrementally ([`rebuild_step`]) with a
//!   per-block watermark, and reads are served correctly mid-rebuild:
//!   below the watermark from the spare, above it through parity.
//!
//! Writes are full-stripe read-modify-write (reconstructing through
//! failures first), so the array accepts writes while degraded — the
//! limitation the in-memory array documents away is handled here.
//!
//! [`rebuild_step`]: ResilientArray::rebuild_step

use crate::array::ArrayError;
use crate::device::ElementIo;
use crate::rotation::RotationScheme;
use dcode_codec::{CacheStats, ScheduleCache, Stripe};
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_faults::{crc32, DiskBackend, DiskError};
use std::collections::BTreeSet;

/// Bounded-retry policy for transient backend errors.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub max_retries: usize,
    /// Backoff charged before retry `k` is `backoff_base_us << k` virtual
    /// microseconds — accounted in [`ResilientStats::backoff_us`], never
    /// slept.
    pub backoff_base_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_us: 500,
        }
    }
}

impl RetryPolicy {
    /// Virtual backoff charged before retry `attempt`, saturating at
    /// `u64::MAX` instead of shifting past the bit width: a user-supplied
    /// `max_retries ≥ 64` used to panic in debug builds (and silently wrap
    /// the charge to zero in release) at `backoff_base_us << attempt`.
    fn backoff_us(&self, attempt: usize) -> u64 {
        u32::try_from(attempt)
            .ok()
            .and_then(|a| 1u64.checked_shl(a))
            .map_or(u64::MAX, |mult| self.backoff_base_us.saturating_mul(mult))
    }
}

/// Health of one array slot (a logical position of the code, mapped to a
/// physical backend disk).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// Serving reads and writes normally.
    Healthy,
    /// Past the error threshold or reported dead; served through parity.
    Failed,
    /// Mapped to a hot spare; blocks below the rebuild watermark are
    /// valid, the rest are served through parity.
    Rebuilding,
}

/// Counters for everything the resilient layer did.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ResilientStats {
    /// Logical elements read.
    pub element_reads: u64,
    /// Logical elements written.
    pub element_writes: u64,
    /// Backend retries issued for transient errors.
    pub retries: u64,
    /// Virtual backoff charged across all retries, microseconds.
    pub backoff_us: u64,
    /// Reads (or write-path fetches) that needed parity reconstruction.
    pub degraded_reads: u64,
    /// Blocks whose CRC32 did not match — silent corruption converted
    /// into an erasure.
    pub checksum_catches: u64,
    /// Reconstructed blocks written back in place after a checksum catch
    /// or sector failure on an otherwise healthy slot.
    pub read_repairs: u64,
    /// Slots auto-transitioned to `Failed` (error threshold or device
    /// reported dead).
    pub auto_fails: u64,
    /// Hot spares attached.
    pub spares_attached: u64,
    /// Rebuilds run to completion.
    pub rebuilds_completed: u64,
    /// Blocks reconstructed onto spares.
    pub rebuilt_blocks: u64,
}

/// In-progress rebuild: blocks `[0, next_block)` of `slot` are already
/// reconstructed onto its new disk.
struct Rebuild {
    slot: usize,
    next_block: usize,
}

/// A RAID-6 array served from a [`DiskBackend`], with retries, checksums,
/// sector-level degraded reads, auto-failure, and hot-spare rebuild.
pub struct ResilientArray<B> {
    layout: CodeLayout,
    rotation: RotationScheme,
    block_size: usize,
    n_stripes: usize,
    backend: B,
    /// Slot → physical backend disk (remapped when a spare is attached).
    slot_to_disk: Vec<usize>,
    /// Physical disks not yet mapped to any slot, in attach order.
    spares: Vec<usize>,
    state: Vec<SlotState>,
    /// Cumulative hard-error count per slot (reset on spare attach).
    errors: Vec<usize>,
    /// Expected CRC32 of every block's *logical* content, `[slot][block]`.
    /// Updated on every write, even to failed slots (the expected content
    /// is what a rebuild must reproduce). A real deployment would persist
    /// these in the metadata region; the simulation keeps them in memory.
    crc: Vec<Vec<u32>>,
    policy: RetryPolicy,
    fail_threshold: usize,
    rebuild: Option<Rebuild>,
    stats: ResilientStats,
    /// Memoized compiled XOR schedules: the full-stripe encode program and
    /// per-(erasure, missing-set) recovery subprograms. In steady state —
    /// the same disk dead across ten thousand reads, or a long rebuild —
    /// every encode and degraded read replays a cached program and
    /// compiles nothing.
    schedules: ScheduleCache,
}

impl<B: DiskBackend> ResilientArray<B> {
    /// Build a fresh array over a zero-filled backend. The backend must
    /// hold at least `layout.disks()` devices of `n_stripes × rows`
    /// blocks; extra devices become hot spares. All-zero stripes are
    /// parity-consistent, so no initial encode pass is needed — but the
    /// backend really must be zeroed (as [`MemBackend::new`] and
    /// [`FileBackend::create`] guarantee).
    ///
    /// [`MemBackend::new`]: dcode_faults::MemBackend::new
    /// [`FileBackend::create`]: dcode_faults::FileBackend::create
    pub fn format(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
    ) -> Self {
        assert!(n_stripes > 0 && block_size > 0 && fail_threshold > 0);
        assert_eq!(backend.block_size(), block_size, "backend block size");
        assert_eq!(
            backend.blocks(),
            n_stripes * layout.rows(),
            "backend blocks per disk"
        );
        assert!(backend.disks() >= layout.disks(), "not enough disks");
        let slots = layout.disks();
        let zero_crc = crc32(&vec![0u8; block_size]);
        ResilientArray {
            slot_to_disk: (0..slots).collect(),
            spares: (slots..backend.disks()).collect(),
            state: vec![SlotState::Healthy; slots],
            errors: vec![0; slots],
            crc: vec![vec![zero_crc; n_stripes * layout.rows()]; slots],
            layout,
            rotation,
            block_size,
            n_stripes,
            backend,
            policy,
            fail_threshold,
            rebuild: None,
            stats: ResilientStats::default(),
            schedules: ScheduleCache::new(),
        }
    }

    /// Open an array over a backend that **already holds data** (a server
    /// restart, a shard directory from an earlier run): geometry checks as
    /// in [`ResilientArray::format`], then the per-block CRC table is
    /// seeded by reading every block back from the medium — the content on
    /// disk is declared the expected content. Any block that cannot be
    /// read through the retry policy fails the attach; degraded re-opens
    /// are handled a layer up by formatting a fresh array and rebuilding.
    pub fn attach(
        layout: CodeLayout,
        block_size: usize,
        n_stripes: usize,
        rotation: RotationScheme,
        backend: B,
        policy: RetryPolicy,
        fail_threshold: usize,
    ) -> Result<Self, DiskError> {
        let mut a = Self::format(
            layout,
            block_size,
            n_stripes,
            rotation,
            backend,
            policy,
            fail_threshold,
        );
        for slot in 0..a.layout.disks() {
            for block in 0..a.total_blocks() {
                let buf = a.read_raw(slot, block)?;
                a.crc[slot][block] = crc32(&buf);
            }
        }
        a.stats = ResilientStats::default();
        Ok(a)
    }

    /// The code this array runs.
    pub fn layout(&self) -> &CodeLayout {
        &self.layout
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.n_stripes
    }

    /// Bytes per element block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Logical data capacity in elements.
    pub fn capacity_elements(&self) -> usize {
        self.n_stripes * self.layout.data_len()
    }

    /// Logical data capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_elements() * self.block_size
    }

    /// Per-slot health.
    pub fn slot_states(&self) -> &[SlotState] {
        &self.state
    }

    /// Slots currently failed (not counting rebuilding slots).
    pub fn failed_slots(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&s| self.state[s] == SlotState::Failed)
            .collect()
    }

    /// Physical backend disk currently serving `slot`.
    pub fn slot_disk(&self, slot: usize) -> usize {
        self.slot_to_disk[slot]
    }

    /// Hot spares not yet attached.
    pub fn spares_remaining(&self) -> usize {
        self.spares.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> &ResilientStats {
        &self.stats
    }

    /// Hit/miss counters of the embedded schedule cache — the steady-state
    /// proof that degraded reads and encodes stop compiling after warm-up.
    pub fn schedule_stats(&self) -> CacheStats {
        self.schedules.stats()
    }

    /// Rebuild progress as `(slot, blocks_done, blocks_total)`.
    pub fn rebuild_progress(&self) -> Option<(usize, usize, usize)> {
        self.rebuild
            .as_ref()
            .map(|r| (r.slot, r.next_block, self.total_blocks()))
    }

    /// Direct access to the backend (chaos harnesses reach through to the
    /// fault injector; tests corrupt the medium beneath the checksums).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    fn rows(&self) -> usize {
        self.layout.rows()
    }

    fn total_blocks(&self) -> usize {
        self.n_stripes * self.rows()
    }

    fn block_of(&self, stripe: usize, row: usize) -> usize {
        stripe * self.rows() + row
    }

    fn slot_of(&self, stripe: usize, col: usize) -> usize {
        self.rotation.to_physical(stripe, col, self.layout.disks())
    }

    fn col_of(&self, stripe: usize, slot: usize) -> usize {
        self.rotation.to_logical(stripe, slot, self.layout.disks())
    }

    fn locate(&self, element: usize) -> Result<(usize, usize), ArrayError> {
        let capacity = self.capacity_elements();
        if element >= capacity {
            return Err(ArrayError::OutOfRange { element, capacity });
        }
        Ok((
            element / self.layout.data_len(),
            element % self.layout.data_len(),
        ))
    }

    fn too_many(&self) -> ArrayError {
        ArrayError::TooManyFailures {
            failed: self.failed_slots(),
        }
    }

    /// Whether a single block of `slot` can be read directly.
    fn block_readable(&self, slot: usize, block: usize) -> bool {
        match self.state[slot] {
            SlotState::Healthy => true,
            SlotState::Failed => false,
            SlotState::Rebuilding => self
                .rebuild
                .as_ref()
                .is_some_and(|r| r.slot == slot && block < r.next_block),
        }
    }

    /// Whether `slot` can serve *every* block of `stripe` directly — the
    /// column-granular notion erasure planning needs.
    fn slot_serves_stripe(&self, slot: usize, stripe: usize) -> bool {
        match self.state[slot] {
            SlotState::Healthy => true,
            SlotState::Failed => false,
            SlotState::Rebuilding => self
                .rebuild
                .as_ref()
                .is_some_and(|r| r.slot == slot && (stripe + 1) * self.rows() <= r.next_block),
        }
    }

    fn mark_failed(&mut self, slot: usize, auto: bool) {
        if self.state[slot] == SlotState::Failed {
            return;
        }
        self.state[slot] = SlotState::Failed;
        if auto {
            self.stats.auto_fails += 1;
        }
        if self.rebuild.as_ref().is_some_and(|r| r.slot == slot) {
            self.rebuild = None;
        }
        self.try_attach_spare();
    }

    /// Count a hard error against `slot`; past the threshold the slot
    /// auto-transitions to `Failed` and a spare is attached if available.
    fn record_error(&mut self, slot: usize) {
        if self.state[slot] == SlotState::Failed {
            return;
        }
        self.errors[slot] += 1;
        if self.errors[slot] >= self.fail_threshold {
            self.mark_failed(slot, true);
        }
    }

    fn note_hard_error(&mut self, slot: usize, e: &DiskError) {
        if matches!(e, DiskError::Failed { .. }) {
            self.mark_failed(slot, true);
        } else {
            self.record_error(slot);
        }
    }

    /// Mark a slot failed by hand (testing, operator action). Attaches a
    /// spare automatically if one is configured and no rebuild is active.
    pub fn fail_disk(&mut self, slot: usize) -> Result<(), ArrayError> {
        assert!(slot < self.layout.disks());
        if self.state[slot] == SlotState::Failed {
            return Err(ArrayError::BadDiskState { disk: slot });
        }
        self.mark_failed(slot, false);
        Ok(())
    }

    /// Attach a spare to the lowest failed slot, if a spare exists and no
    /// rebuild is in progress. Returns the slot a rebuild started on.
    /// Called automatically on every failure transition.
    pub fn try_attach_spare(&mut self) -> Option<usize> {
        if self.rebuild.is_some() || self.spares.is_empty() {
            return None;
        }
        let slot = (0..self.state.len()).find(|&s| self.state[s] == SlotState::Failed)?;
        let disk = self.spares.remove(0);
        self.slot_to_disk[slot] = disk;
        self.state[slot] = SlotState::Rebuilding;
        self.errors[slot] = 0;
        self.rebuild = Some(Rebuild {
            slot,
            next_block: 0,
        });
        self.stats.spares_attached += 1;
        Some(slot)
    }

    /// Raw block read through the retry policy.
    fn read_raw(&mut self, slot: usize, block: usize) -> Result<Vec<u8>, DiskError> {
        let disk = self.slot_to_disk[slot];
        let mut buf = vec![0u8; self.block_size];
        let mut attempt = 0usize;
        loop {
            match self.backend.read_block(disk, block, &mut buf) {
                Ok(()) => return Ok(buf),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.stats.retries += 1;
                    self.stats.backoff_us = self
                        .stats
                        .backoff_us
                        .saturating_add(self.policy.backoff_us(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Raw block write through the retry policy.
    fn write_raw(&mut self, slot: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        let disk = self.slot_to_disk[slot];
        let mut attempt = 0usize;
        loop {
            match self.backend.write_block(disk, block, data) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && attempt < self.policy.max_retries => {
                    self.stats.retries += 1;
                    self.stats.backoff_us = self
                        .stats
                        .backoff_us
                        .saturating_add(self.policy.backoff_us(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one cell with full checking. `None` means the cell must be
    /// served through parity (slot down, sector dead, retries exhausted,
    /// or checksum mismatch); the error bookkeeping has already happened.
    fn read_cell(&mut self, stripe: usize, cell: Cell) -> Option<Vec<u8>> {
        let slot = self.slot_of(stripe, cell.col);
        let block = self.block_of(stripe, cell.row);
        if !self.block_readable(slot, block) {
            return None;
        }
        match self.read_raw(slot, block) {
            Ok(buf) => {
                if crc32(&buf) == self.crc[slot][block] {
                    Some(buf)
                } else {
                    self.stats.checksum_catches += 1;
                    self.record_error(slot);
                    None
                }
            }
            Err(e) => {
                self.note_hard_error(slot, &e);
                None
            }
        }
    }

    /// Fetch `wanted` cells of one stripe into a scratch stripe, serving
    /// unreadable cells through parity reconstruction. The scratch holds
    /// valid bytes for every wanted cell plus whatever survivors the
    /// recovery read along the way.
    fn fetch_cells(
        &mut self,
        stripe: usize,
        wanted: &BTreeSet<Cell>,
        count_degraded: bool,
    ) -> Result<Stripe, ArrayError> {
        let mut scratch = Stripe::zeroed(&self.layout, self.block_size);
        let mut missing: BTreeSet<Cell> = BTreeSet::new();
        for &cell in wanted {
            match self.read_cell(stripe, cell) {
                Some(buf) => scratch.block_mut(cell).copy_from_slice(&buf),
                None => {
                    missing.insert(cell);
                }
            }
        }
        if missing.is_empty() {
            return Ok(scratch);
        }
        if count_degraded {
            self.stats.degraded_reads += 1;
        }

        // Column-granular erasure set: every slot that cannot serve this
        // whole stripe, plus the columns of the cells that just failed.
        let mut erased_cols: BTreeSet<usize> = (0..self.layout.disks())
            .filter(|&s| !self.slot_serves_stripe(s, stripe))
            .map(|s| self.col_of(stripe, s))
            .collect();
        for c in &missing {
            erased_cols.insert(c.col);
        }
        let mut loaded: BTreeSet<Cell> = wanted.difference(&missing).copied().collect();

        // Re-plan whenever reading a survivor surfaces a new failure. The
        // compiled subprogram (and its surviving-read list) comes from the
        // schedule cache keyed on (erased columns, missing cells): a
        // stable failure pattern — the steady state of a dead disk or a
        // long rebuild — plans and compiles only on its first read.
        'replan: loop {
            let compiled = self
                .schedules
                .recovery_subprogram(&self.layout, erased_cols.iter().copied(), &missing)
                .map_err(|_| self.too_many())?;
            for &cell in compiled.reads.iter() {
                if loaded.contains(&cell) {
                    continue;
                }
                match self.read_cell(stripe, cell) {
                    Some(buf) => {
                        scratch.block_mut(cell).copy_from_slice(&buf);
                        loaded.insert(cell);
                    }
                    None => {
                        erased_cols.insert(cell.col);
                        continue 'replan;
                    }
                }
            }
            compiled.program.run(&mut scratch);
            break;
        }

        // Read-repair: a cell that failed on an otherwise healthy slot
        // (checksum catch, bad sector) is rewritten in place with its
        // reconstructed content — drives remap on write.
        let repairable: Vec<Cell> = missing
            .iter()
            .copied()
            .filter(|c| self.state[self.slot_of(stripe, c.col)] == SlotState::Healthy)
            .collect();
        for cell in repairable {
            let slot = self.slot_of(stripe, cell.col);
            let block = self.block_of(stripe, cell.row);
            let data = scratch.snapshot(cell);
            match self.write_raw(slot, block, &data) {
                Ok(()) => {
                    self.crc[slot][block] = crc32(&data);
                    self.stats.read_repairs += 1;
                }
                Err(e) => self.note_hard_error(slot, &e),
            }
        }
        Ok(scratch)
    }

    /// Read `count` logical elements starting at `start`, through retries,
    /// checksum catches, sector failures, dead disks, and in-progress
    /// rebuilds.
    pub fn read(&mut self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        self.locate(start)?;
        self.locate(start + count - 1)?;
        let mut out = Vec::with_capacity(count * self.block_size);
        let mut element = start;
        let mut remaining = count;
        while remaining > 0 {
            let (t, within) = self.locate(element).expect("range checked");
            let room = self.layout.data_len() - within;
            let chunk = room.min(remaining);
            let wanted: BTreeSet<Cell> = (within..within + chunk)
                .map(|i| self.layout.logical_to_cell(i))
                .collect();
            let scratch = self.fetch_cells(t, &wanted, true)?;
            for i in within..within + chunk {
                out.extend_from_slice(scratch.block(self.layout.logical_to_cell(i)));
            }
            self.stats.element_reads += chunk as u64;
            element += chunk;
            remaining -= chunk;
        }
        Ok(out)
    }

    /// Write `bytes` (a multiple of the block size) starting at logical
    /// element `start`. Full-stripe read-modify-write: each touched
    /// stripe's data is fetched (through parity if degraded), modified,
    /// re-encoded, and written back — so writes work while degraded and
    /// mid-rebuild. A write spanning several stripes batches the
    /// re-encodes through [`encode_stripes_pooled`] on the global worker
    /// pool: one cached program, stripes encoded in parallel, which is
    /// what lets a server batch many queued puts into one pooled encode.
    ///
    /// [`encode_stripes_pooled`]: dcode_codec::encode_stripes_pooled
    pub fn write(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError> {
        assert!(
            bytes.len() % self.block_size == 0,
            "write length must be a multiple of the block size"
        );
        let count = bytes.len() / self.block_size;
        if count == 0 {
            return Ok(());
        }
        self.locate(start)?;
        self.locate(start + count - 1)?;

        // Split the range into per-stripe segments.
        let mut segments: Vec<(usize, usize, usize, usize)> = Vec::new(); // (stripe, within, chunk, offset)
        let mut offset = 0;
        let mut element = start;
        while offset < count {
            let (t, within) = self.locate(element).expect("range checked");
            let chunk = (self.layout.data_len() - within).min(count - offset);
            segments.push((t, within, chunk, offset));
            offset += chunk;
            element += chunk;
        }

        // Fetch-and-patch every touched stripe, then re-encode the whole
        // batch in one pooled call, then persist. Segments are disjoint
        // stripes, so the phases commute with the sequential order.
        let mut scratches = Vec::with_capacity(segments.len());
        for &(t, within, chunk, off) in &segments {
            let mut scratch = self.fetch_and_patch(
                t,
                within,
                chunk,
                &bytes[off * self.block_size..(off + chunk) * self.block_size],
            )?;
            if segments.len() == 1 {
                // Single stripe: encode inline, skip the batching machinery.
                self.schedules
                    .encode_program(&self.layout)
                    .run(&mut scratch);
            }
            scratches.push(scratch);
        }
        if segments.len() > 1 {
            let program = self.schedules.encode_program(&self.layout);
            let threads = minipool::effective_parallelism(scratches.len());
            dcode_codec::encode_stripes_pooled(
                &program,
                &mut scratches,
                minipool::global(),
                threads,
            );
        }
        for (&(t, within, chunk, _), scratch) in segments.iter().zip(&scratches) {
            self.persist_segment(t, within, chunk, scratch);
        }
        Ok(())
    }

    /// Fetch one stripe's full data (through parity if degraded) and patch
    /// `chunk` elements starting at logical position `within`.
    fn fetch_and_patch(
        &mut self,
        stripe: usize,
        within: usize,
        chunk: usize,
        bytes: &[u8],
    ) -> Result<Stripe, ArrayError> {
        let all_data: BTreeSet<Cell> = self.layout.data_cells().iter().copied().collect();
        let mut scratch = self.fetch_cells(stripe, &all_data, true)?;
        for i in 0..chunk {
            let cell = self.layout.logical_to_cell(within + i);
            scratch
                .block_mut(cell)
                .copy_from_slice(&bytes[i * self.block_size..(i + 1) * self.block_size]);
        }
        Ok(scratch)
    }

    /// Persist a re-encoded stripe: the modified data cells plus every
    /// (recomputed) parity cell.
    fn persist_segment(&mut self, stripe: usize, within: usize, chunk: usize, scratch: &Stripe) {
        let mut targets: Vec<Cell> = (within..within + chunk)
            .map(|i| self.layout.logical_to_cell(i))
            .collect();
        targets.extend(self.layout.parity_cells());
        for cell in targets {
            let data = scratch.snapshot(cell);
            self.store_cell(stripe, cell, &data);
        }
        self.stats.element_writes += chunk as u64;
    }

    /// Write one cell's content where possible and record its expected
    /// CRC everywhere. A failed slot keeps only the CRC (the content is
    /// implied by parity and materializes at rebuild); a hard write error
    /// is recorded but not surfaced — parity still protects the data, and
    /// the stale on-medium block is caught by checksum at next read.
    fn store_cell(&mut self, stripe: usize, cell: Cell, data: &[u8]) {
        let slot = self.slot_of(stripe, cell.col);
        let block = self.block_of(stripe, cell.row);
        self.crc[slot][block] = crc32(data);
        let writable = match self.state[slot] {
            SlotState::Healthy => true,
            SlotState::Failed => false,
            SlotState::Rebuilding => self
                .rebuild
                .as_ref()
                .is_some_and(|r| r.slot == slot && block < r.next_block),
        };
        if !writable {
            return;
        }
        if let Err(e) = self.write_raw(slot, block, data) {
            self.note_hard_error(slot, &e);
        }
    }

    /// Advance the active rebuild by up to `max_blocks` reconstructed
    /// blocks. Returns `true` when no rebuild remains active (completed,
    /// aborted, or none was running). Interleave with reads/writes: the
    /// watermark keeps every read correct mid-rebuild.
    pub fn rebuild_step(&mut self, max_blocks: usize) -> Result<bool, ArrayError> {
        for _ in 0..max_blocks {
            let Some(r) = &self.rebuild else {
                return Ok(true);
            };
            let (slot, block) = (r.slot, r.next_block);
            let stripe = block / self.rows();
            let row = block % self.rows();
            let cell = Cell::new(row, self.col_of(stripe, slot));
            let mut wanted = BTreeSet::new();
            wanted.insert(cell);
            let scratch = self.fetch_cells(stripe, &wanted, false)?;
            let data = scratch.snapshot(cell);
            match self.write_raw(slot, block, &data) {
                Ok(()) => {
                    self.crc[slot][block] = crc32(&data);
                    self.stats.rebuilt_blocks += 1;
                    let total = self.total_blocks();
                    if let Some(r) = &mut self.rebuild {
                        r.next_block += 1;
                        if r.next_block >= total {
                            let done = self.rebuild.take().expect("just checked");
                            self.state[done.slot] = SlotState::Healthy;
                            self.errors[done.slot] = 0;
                            self.stats.rebuilds_completed += 1;
                            // Another slot may have failed while this
                            // rebuild ran; chain onto the next spare.
                            self.try_attach_spare();
                            return Ok(self.rebuild.is_none());
                        }
                    }
                }
                Err(e) => {
                    // The spare itself is misbehaving. A hard failure
                    // aborts this rebuild (and may chain onto the next
                    // spare); a transient exhaustion retries the same
                    // block on the next call.
                    self.note_hard_error(slot, &e);
                    if self.state[slot] == SlotState::Failed || self.rebuild.is_none() {
                        return Ok(self.rebuild.is_none());
                    }
                }
            }
        }
        Ok(self.rebuild.is_none())
    }

    /// One full read-verify pass over every cell of every stripe — data
    /// *and* parity. Checksum mismatches and bad sectors surface as
    /// degraded reads and are repaired in place by the read-repair path;
    /// the summary reports what the pass found, as deltas of the array's
    /// counters. This is what a scrubbing server runs against each shard.
    pub fn scrub_pass(&mut self) -> Result<ScrubSummary, ArrayError> {
        let before = self.stats.clone();
        let all_cells: BTreeSet<Cell> = self
            .layout
            .data_cells()
            .iter()
            .copied()
            .chain(self.layout.parity_cells())
            .collect();
        for stripe in 0..self.n_stripes {
            self.fetch_cells(stripe, &all_cells, true)?;
        }
        Ok(ScrubSummary {
            stripes: self.n_stripes,
            checksum_catches: self.stats.checksum_catches - before.checksum_catches,
            degraded_reads: self.stats.degraded_reads - before.degraded_reads,
            read_repairs: self.stats.read_repairs - before.read_repairs,
        })
    }
}

/// What one [`ResilientArray::scrub_pass`] found and fixed.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct ScrubSummary {
    /// Stripes read end to end.
    pub stripes: usize,
    /// Silent corruptions caught by CRC during the pass.
    pub checksum_catches: u64,
    /// Stripes (fetches) that needed parity reconstruction.
    pub degraded_reads: u64,
    /// Blocks rewritten in place with reconstructed content.
    pub read_repairs: u64,
}

impl<B: DiskBackend> ElementIo for ResilientArray<B> {
    fn capacity_elements(&self) -> usize {
        ResilientArray::capacity_elements(self)
    }

    fn element_size(&self) -> usize {
        self.block_size
    }

    fn read_elements(&mut self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError> {
        self.read(start, count)
    }

    fn write_elements(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError> {
        self.write(start, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;
    use dcode_faults::{FaultInjector, FaultPlan, MemBackend};

    fn mem_array(p: usize, stripes: usize, spares: usize) -> ResilientArray<MemBackend> {
        let layout = dcode(p).unwrap();
        let backend = MemBackend::new(layout.disks() + spares, stripes * layout.rows(), 16);
        ResilientArray::format(
            layout,
            16,
            stripes,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn roundtrip_and_unaligned_reads() {
        let mut a = mem_array(5, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        let mid = a.read(11, 9).unwrap();
        assert_eq!(mid, &data[11 * 16..20 * 16]);
    }

    #[test]
    fn checksum_catch_converts_rot_into_degraded_read_and_repairs() {
        let mut a = mem_array(5, 3, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Rot a byte on the medium beneath the checksums.
        let disk = a.slot_disk(1);
        a.backend_mut().disk_bytes_mut(disk)[5] ^= 0x40;
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().checksum_catches, 1);
        assert_eq!(a.stats().degraded_reads, 1);
        assert_eq!(a.stats().read_repairs, 1);
        // The repair rewrote the block: a second pass is clean.
        let catches = a.stats().checksum_catches;
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().checksum_catches, catches);
    }

    #[test]
    fn retries_exhaust_then_degrade() {
        let layout = dcode(5).unwrap();
        let mut plan = FaultPlan::quiet(11);
        plan.p_transient_read = 1.0; // every read fails, forever
        let backend =
            FaultInjector::new(MemBackend::new(layout.disks(), 2 * layout.rows(), 16), plan);
        let mut a = ResilientArray::format(
            layout,
            16,
            2,
            RotationScheme::None,
            backend,
            RetryPolicy {
                max_retries: 2,
                backoff_base_us: 100,
            },
            1000, // never auto-fail in this test
        );
        // With every disk refusing reads, recovery is impossible.
        assert!(a.read(0, 1).is_err());
        assert!(a.stats().retries >= 2);
        assert!(a.stats().backoff_us >= 300); // 100 + 200
    }

    #[test]
    fn pathological_retry_policy_saturates_instead_of_panicking() {
        // Regression: backoff accounting used `base << attempt`, which
        // panics in debug (wraps in release) once attempt reaches 64. A
        // user is free to configure max_retries ≥ 64; the charge must
        // saturate, not overflow.
        let layout = dcode(5).unwrap();
        let mut plan = FaultPlan::quiet(7);
        plan.p_transient_read = 1.0; // every read fails, forever
        let backend = FaultInjector::new(MemBackend::new(layout.disks(), layout.rows(), 16), plan);
        let mut a = ResilientArray::format(
            layout,
            16,
            1,
            RotationScheme::None,
            backend,
            RetryPolicy {
                max_retries: 80,
                backoff_base_us: u64::MAX / 2,
            },
            usize::MAX, // never auto-fail: drive every retry attempt
        );
        // Reads exhaust all 80 retries on every disk without panicking,
        // and the accumulated charge saturates rather than wrapping.
        assert!(a.read(0, 1).is_err());
        assert!(a.stats().retries >= 80);
        assert_eq!(a.stats().backoff_us, u64::MAX);

        // The per-attempt charge itself caps at u64::MAX past the width.
        let policy = RetryPolicy {
            max_retries: 100,
            backoff_base_us: 3,
        };
        assert_eq!(policy.backoff_us(0), 3);
        assert_eq!(policy.backoff_us(1), 6);
        assert_eq!(policy.backoff_us(63), u64::MAX); // 3 × 2^63 saturates
        assert_eq!(policy.backoff_us(64), u64::MAX);
        assert_eq!(policy.backoff_us(usize::MAX), u64::MAX);
    }

    #[test]
    fn threshold_auto_fails_and_attaches_spare() {
        let mut a = mem_array(5, 3, 1);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Corrupt many blocks of slot 2's disk: each read is a checksum
        // catch; past the threshold (4) the slot fails and the spare
        // attaches.
        let disk = a.slot_disk(2);
        let rows = a.layout().rows();
        for b in 0..3 * rows {
            a.backend_mut().disk_bytes_mut(disk)[b * 16] ^= 0xFF;
        }
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().auto_fails, 1);
        assert_eq!(a.stats().spares_attached, 1);
        assert_eq!(a.slot_states()[2], SlotState::Rebuilding);
        assert_eq!(a.slot_disk(2), 5); // remapped to the spare
                                       // Drive the rebuild home; everything is healthy and correct.
        while !a.rebuild_step(8).unwrap() {}
        assert_eq!(a.slot_states()[2], SlotState::Healthy);
        assert_eq!(a.stats().rebuilds_completed, 1);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
    }

    #[test]
    fn reads_and_writes_served_mid_rebuild() {
        let mut a = mem_array(7, 6, 1);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        a.fail_disk(3).unwrap();
        assert_eq!(a.slot_states()[3], SlotState::Rebuilding);
        // Step the rebuild partway: the watermark sits inside the array.
        a.rebuild_step(a.layout().rows() * 2).unwrap();
        let (_, done, total) = a.rebuild_progress().unwrap();
        assert!(done > 0 && done < total);
        // Reads are correct both below and above the watermark.
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        // A write mid-rebuild lands correctly too.
        let patch = vec![0xABu8; 3 * 16];
        a.write(10, &patch).unwrap();
        while !a.rebuild_step(16).unwrap() {}
        let mut expect = data;
        expect[10 * 16..13 * 16].copy_from_slice(&patch);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), expect);
    }

    #[test]
    fn steady_state_degraded_reads_stop_compiling() {
        let mut a = mem_array(7, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        a.fail_disk(2).unwrap();
        // Warm-up pass: every distinct (erasure, missing-set) pair this
        // workload can produce gets compiled and cached exactly once.
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        let warm = a.schedule_stats();
        assert!(warm.misses > 0, "warm-up should have compiled something");
        // Steady state: identical degraded reads are pure cache hits.
        for _ in 0..3 {
            assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        }
        let steady = a.schedule_stats();
        assert_eq!(
            steady.misses, warm.misses,
            "degraded reads kept compiling after warm-up"
        );
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn multi_stripe_writes_batch_through_the_pooled_encoder() {
        // A write spanning many stripes must land byte-identical to the
        // sequential path (the pooled batch encode is behaviorally
        // invisible), including while degraded.
        let mut a = mem_array(7, 8, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap(); // spans all 8 stripes in one call
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        a.fail_disk(2).unwrap();
        let patch = payload(a.capacity_bytes() - 3 * 16);
        a.write(3, &patch).unwrap(); // unaligned, degraded, multi-stripe
        let mut expect = data;
        expect[3 * 16..].copy_from_slice(&patch);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), expect);
    }

    #[test]
    fn scrub_pass_finds_and_repairs_rot_on_data_and_parity() {
        let mut a = mem_array(5, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Clean medium: a pass finds nothing.
        let clean = a.scrub_pass().unwrap();
        assert_eq!(clean.stripes, 4);
        assert_eq!(clean.checksum_catches, 0);
        assert_eq!(clean.read_repairs, 0);
        // Rot two blocks — one early (data region) and one in the last
        // row (parity rows live there for these codes).
        let disk = a.slot_disk(3);
        let rows = a.layout().rows();
        let bytes = a.backend_mut().disk_bytes_mut(disk);
        bytes[0] ^= 0x01;
        let last_block_off = (4 * rows - 1) * 16;
        bytes[last_block_off] ^= 0x80;
        let dirty = a.scrub_pass().unwrap();
        assert_eq!(dirty.checksum_catches, 2, "{dirty:?}");
        assert_eq!(dirty.read_repairs, 2, "{dirty:?}");
        // The repairs stuck: a third pass is clean and data is intact.
        let again = a.scrub_pass().unwrap();
        assert_eq!(again.checksum_catches, 0, "{again:?}");
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
    }

    #[test]
    fn attach_reopens_an_array_with_crcs_seeded_from_the_medium() {
        let layout = dcode(5).unwrap();
        let mut a = ResilientArray::format(
            layout.clone(),
            16,
            3,
            RotationScheme::PerStripe,
            MemBackend::new(layout.disks(), 3 * layout.rows(), 16),
            RetryPolicy::default(),
            4,
        );
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Steal the medium and re-open it cold, as a restarted server
        // shard would.
        let backend = std::mem::replace(a.backend_mut(), MemBackend::new(7, 15, 16));
        let mut b = ResilientArray::attach(
            layout,
            16,
            3,
            RotationScheme::PerStripe,
            backend,
            RetryPolicy::default(),
            4,
        )
        .unwrap();
        assert_eq!(b.read(0, b.capacity_elements()).unwrap(), data);
        assert_eq!(b.stats().checksum_catches, 0, "seeded CRCs must match");
        assert_eq!(b.scrub_pass().unwrap().checksum_catches, 0);
    }

    #[test]
    fn degraded_writes_survive_double_failure() {
        let mut a = mem_array(7, 4, 0);
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        a.fail_disk(1).unwrap();
        a.fail_disk(4).unwrap();
        let patch = vec![0x5Au8; 5 * 16];
        a.write(7, &patch).unwrap();
        let mut expect = data;
        expect[7 * 16..12 * 16].copy_from_slice(&patch);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), expect);
        // A third failure is beyond RAID-6.
        a.fail_disk(0).unwrap();
        assert!(matches!(
            a.read(0, 1),
            Err(ArrayError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn sector_failure_degrades_only_that_element() {
        let layout = dcode(5).unwrap();
        let plan = FaultPlan::quiet(3);
        let backend =
            FaultInjector::new(MemBackend::new(layout.disks(), 3 * layout.rows(), 16), plan);
        let mut a = ResilientArray::format(
            layout,
            16,
            3,
            RotationScheme::None,
            backend,
            RetryPolicy::default(),
            100, // high threshold: the slot must NOT fail
        );
        let data = payload(a.capacity_bytes());
        a.write(0, &data).unwrap();
        // Kill one sector on disk 0.
        a.backend_mut().mint_bad_sector(0, 0);
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().degraded_reads, 1);
        assert_eq!(a.slot_states()[0], SlotState::Healthy);
        // Read-repair rewrote the sector (remap-on-write): clean now.
        let degraded = a.stats().degraded_reads;
        assert_eq!(a.read(0, a.capacity_elements()).unwrap(), data);
        assert_eq!(a.stats().degraded_reads, degraded);
    }
}
