//! Chaos soak harness: a randomized op/fault schedule replayed against a
//! [`ResilientArray`] over a [`FaultInjector`], mirrored by a flat
//! in-memory oracle, asserting zero data loss within RAID-6 tolerance.
//!
//! The soak is fully deterministic for a given seed: the fault injector
//! and the op-mix generator are both seeded, and the headline events —
//! a mid-write power cut with remount, silent corruption, a bad-sector
//! shower that crosses the auto-fail threshold, a whole-disk kill — are
//! *placed* at fixed fractions of the schedule rather than rolled, so
//! every run exercises journal replay, checksum catches, degraded reads,
//! auto-failure, hot-spare attach, and rebuild completion. The
//! probabilistic fault knobs (transient errors, torn writes, latency
//! spikes) stay on throughout to keep the retry and backoff paths
//! honest, and the whole run models a volatile write-back cache — an
//! acknowledged write that was never flushed is *lost* at the power cut.
//!
//! The crash event is placed *before* the at-rest corruption event on
//! purpose: a journaled remount re-seeds the expected CRCs from the
//! medium, so an unread corruption sitting on disk across a remount
//! would be ratified as expected content and read back as "clean"
//! garbage — the harness would misattribute it as data loss.

use crate::array::ArrayError;
use crate::journal::journal_blocks_per_disk;
use crate::resilient::{ResilientArray, ResilientStats, RetryPolicy, SlotState};
use crate::rotation::RotationScheme;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_faults::{catch_crash, FaultInjector, FaultPlan, FaultStats, MemBackend};
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

/// Knobs for one soak run.
#[derive(Copy, Clone, Debug)]
pub struct ChaosConfig {
    /// Seed driving both the fault plan and the op mix.
    pub seed: u64,
    /// Number of harness operations to replay.
    pub ops: usize,
    /// Stripes in the array under test.
    pub stripes: usize,
    /// Bytes per element block.
    pub block_size: usize,
    /// Hot spares configured beyond the code's disk count.
    pub spares: usize,
    /// Hard errors a slot absorbs before auto-failing.
    pub fail_threshold: usize,
}

impl ChaosConfig {
    /// The standard soak shape at a given seed and op count.
    pub fn new(seed: u64, ops: usize) -> Self {
        ChaosConfig {
            seed,
            ops,
            stripes: 12,
            block_size: 64,
            spares: 2,
            fail_threshold: 6,
        }
    }
}

/// Outcome of one soak run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Code name under test.
    pub code: String,
    /// Harness operations replayed.
    pub ops: usize,
    /// Logical read ops issued.
    pub reads: u64,
    /// Logical write ops issued.
    pub writes: u64,
    /// Reads whose bytes did not match the oracle — must be zero.
    pub data_loss: u64,
    /// Reads/writes rejected with an array error — must be zero while the
    /// schedule stays within RAID-6 tolerance.
    pub op_errors: u64,
    /// Array-layer counters (retries, degraded reads, checksum catches,
    /// rebuilds, ...).
    pub arr: ResilientStats,
    /// Injector-side counters (faults actually fired).
    pub faults: FaultStats,
    /// Whether every started rebuild ran to completion by the end.
    pub rebuild_done: bool,
    /// Power-cut-and-remount events executed (journal replay exercised).
    pub crash_remounts: u64,
}

impl ChaosReport {
    /// A soak passes when nothing was lost, no op failed, and the run
    /// exercised every headline event at least once — including at least
    /// one mid-write power cut that fired and was remounted through the
    /// journal.
    pub fn passed(&self) -> bool {
        self.data_loss == 0
            && self.op_errors == 0
            && self.rebuild_done
            && self.arr.auto_fails >= 1
            && self.arr.spares_attached >= 1
            && self.arr.rebuilds_completed >= 1
            && self.arr.checksum_catches >= 1
            && self.arr.degraded_reads >= 1
            && self.crash_remounts >= 1
            && self.faults.crashes >= 1
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} ops ({} reads, {} writes) — {}",
            self.code,
            self.ops,
            self.reads,
            self.writes,
            if self.passed() { "OK" } else { "FAILED" }
        )?;
        writeln!(f, "  data loss events     {}", self.data_loss)?;
        writeln!(f, "  op errors            {}", self.op_errors)?;
        writeln!(f, "  retries              {}", self.arr.retries)?;
        writeln!(f, "  backoff (virtual µs) {}", self.arr.backoff_us)?;
        writeln!(f, "  degraded reads       {}", self.arr.degraded_reads)?;
        writeln!(f, "  checksum catches     {}", self.arr.checksum_catches)?;
        writeln!(f, "  read repairs         {}", self.arr.read_repairs)?;
        writeln!(f, "  auto-failed slots    {}", self.arr.auto_fails)?;
        writeln!(f, "  spares attached      {}", self.arr.spares_attached)?;
        writeln!(
            f,
            "  rebuilds completed   {} ({} blocks)",
            self.arr.rebuilds_completed, self.arr.rebuilt_blocks
        )?;
        writeln!(
            f,
            "  crash remounts       {} ({} crashes fired, {} cached writes lost)",
            self.crash_remounts, self.faults.crashes, self.faults.writes_dropped
        )?;
        writeln!(
            f,
            "  injected faults      {} transient, {} torn, {} bad sectors, {} corruptions, {} disk kills",
            self.faults.transient_reads + self.faults.transient_writes,
            self.faults.torn_writes,
            self.faults.bad_sectors,
            self.faults.silent_corruptions,
            self.faults.disk_fails
        )?;
        write!(
            f,
            "  virtual I/O time     {} µs ({} latency spikes)",
            self.faults.latency_us, self.faults.latency_spikes
        )
    }
}

type Dut = ResilientArray<FaultInjector<MemBackend>>;

/// Replay a seeded chaos schedule against `layout` and report what the
/// resilience machinery did. Panics only on harness bugs; array-level
/// trouble lands in the report.
pub fn soak(layout: CodeLayout, cfg: &ChaosConfig) -> ChaosReport {
    let code = layout.name().to_string();
    let rows = layout.rows();
    let disks = layout.disks();
    let data_len = layout.data_len();
    let rotation = RotationScheme::PerStripe;

    let mut plan = FaultPlan::quiet(cfg.seed);
    plan.p_transient_read = 0.01;
    plan.p_transient_write = 0.01;
    plan.p_torn_write = 0.004;
    plan.p_latency_spike = 0.01;
    plan.volatile_cache = true;
    let per_disk = cfg.stripes * rows + journal_blocks_per_disk(&layout, cfg.block_size);
    let backend = FaultInjector::new(
        MemBackend::new(disks + cfg.spares, per_disk, cfg.block_size),
        plan,
    );
    let remount_layout = layout.clone();
    let mut arr = Dut::format_journaled(
        layout,
        cfg.block_size,
        cfg.stripes,
        rotation,
        backend,
        RetryPolicy::default(),
        cfg.fail_threshold,
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x00C0_FFEE);
    let mut oracle = vec![0u8; arr.capacity_bytes()];
    let capacity = arr.capacity_elements();
    let bs = cfg.block_size;

    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut data_loss = 0u64;
    let mut op_errors = 0u64;
    let mut crash_remounts = 0u64;

    // Placed events: the power cut first (see the module doc for why it
    // must precede the corruption), corruption early, the sector shower
    // at a third, an optional whole-disk kill at two thirds (leaving
    // time to rebuild).
    let corrupt_at = (cfg.ops / 8).max(1);
    let crash_at = (cfg.ops / 12).min(corrupt_at.saturating_sub(1));
    let shower_at = (cfg.ops / 3).max(2);
    let kill_at = (2 * cfg.ops / 3).max(3);

    // Find data blocks of a slot: block b of slot s holds stripe b/rows,
    // row b%rows, logical column given by the rotation.
    let data_blocks_of = |arr: &Dut, slot: usize| -> Vec<usize> {
        (0..cfg.stripes * rows)
            .filter(|&b| {
                let cell = Cell::new(b % rows, rotation.to_logical(b / rows, slot, disks));
                arr.layout().kind(cell).is_data()
            })
            .collect()
    };
    let element_of = |arr: &Dut, slot: usize, block: usize| -> usize {
        let stripe = block / rows;
        let cell = Cell::new(block % rows, rotation.to_logical(stripe, slot, disks));
        stripe * data_len + arr.layout().logical_of(cell).expect("data cell")
    };

    let checked_read = |arr: &mut Dut,
                        oracle: &[u8],
                        start: usize,
                        count: usize,
                        reads: &mut u64,
                        data_loss: &mut u64,
                        op_errors: &mut u64| {
        *reads += 1;
        match arr.read(start, count) {
            Ok(bytes) => {
                if bytes != oracle[start * bs..(start + count) * bs] {
                    *data_loss += 1;
                }
            }
            Err(_) => *op_errors += 1,
        }
    };

    for op in 0..cfg.ops {
        if op == crash_at && arr.failed_slots().is_empty() && arr.rebuild_progress().is_none() {
            // The power goes out mid-write: arm a crash a few backend
            // writes into a random logical write, let it unwind, drop
            // whatever the volatile cache still held, and remount the
            // medium through the journaled attach. The crashed write was
            // never acknowledged, so the oracle accepts old *or* new
            // content for each element it touched — anything else is
            // loss.
            let start = rng.gen_range(0..capacity);
            let count = rng.gen_range(1..=(capacity - start).min(2 * data_len));
            let mut bytes = vec![0u8; count * bs];
            rng.fill_bytes(&mut bytes);
            let crash_in = rng.gen_range(0..12u64);
            arr.backend_mut().arm_crash(crash_in);
            writes += 1;
            let outcome = {
                let a = &mut arr;
                let b = &bytes;
                catch_crash(move || a.write(start, b))
            };
            match &outcome {
                Some(Ok(())) => {
                    // The op finished before the armed index: an acked
                    // write, so the oracle takes it — it must survive.
                    arr.backend_mut().disarm_crash();
                    oracle[start * bs..(start + count) * bs].copy_from_slice(&bytes);
                }
                Some(Err(_)) => {
                    arr.backend_mut().disarm_crash();
                    op_errors += 1;
                }
                None => {} // crashed mid-write, as intended
            }
            let mut medium = arr.into_backend();
            medium.power_cycle();
            arr = Dut::attach_journaled(
                remount_layout.clone(),
                cfg.block_size,
                cfg.stripes,
                rotation,
                medium,
                RetryPolicy::default(),
                cfg.fail_threshold,
            )
            .expect("chaos remount after power cut");
            crash_remounts += 1;
            if outcome.is_none() {
                // Resolve the suspect elements against the remounted
                // array: ratify whichever of old/new actually landed.
                for e in start..start + count {
                    reads += 1;
                    match arr.read(e, 1) {
                        Ok(got) => {
                            let new = &bytes[(e - start) * bs..(e - start + 1) * bs];
                            if got == new {
                                oracle[e * bs..(e + 1) * bs].copy_from_slice(new);
                            } else if got != oracle[e * bs..(e + 1) * bs] {
                                data_loss += 1;
                            }
                        }
                        Err(_) => op_errors += 1,
                    }
                }
            }
        }
        if op == corrupt_at {
            // Silent at-rest corruption on two healthy slots, immediately
            // read back so the checksum layer must catch both.
            for slot in [0usize, 1] {
                let block = data_blocks_of(&arr, slot)[slot];
                let disk = arr.slot_disk(slot);
                arr.backend_mut().corrupt_at_rest(disk, block);
                let elem = element_of(&arr, slot, block);
                checked_read(
                    &mut arr,
                    &oracle,
                    elem,
                    1,
                    &mut reads,
                    &mut data_loss,
                    &mut op_errors,
                );
            }
        }
        if op == shower_at {
            // A shower of bad sectors on one slot — more than the error
            // threshold — then a patrol read over everything. The patrol
            // degrades through the dead sectors, trips the threshold
            // mid-pass, auto-fails the slot, and attaches a spare.
            let victim = (0..disks)
                .find(|&s| arr.slot_states()[s] == SlotState::Healthy)
                .expect("some healthy slot");
            let blocks = data_blocks_of(&arr, victim);
            let disk = arr.slot_disk(victim);
            for &b in blocks.iter().take(cfg.fail_threshold + 2) {
                arr.backend_mut().mint_bad_sector(disk, b);
            }
            for start in (0..capacity).step_by(data_len) {
                let count = data_len.min(capacity - start);
                checked_read(
                    &mut arr,
                    &oracle,
                    start,
                    count,
                    &mut reads,
                    &mut data_loss,
                    &mut op_errors,
                );
            }
        }
        if op == kill_at
            && arr.failed_slots().is_empty()
            && arr.rebuild_progress().is_none()
            && arr.spares_remaining() > 0
        {
            // Whole-device death, discovered on the next touch.
            let victim = rng.gen_range(0..disks);
            let disk = arr.slot_disk(victim);
            arr.backend_mut().fail_disk(disk);
            let elem = element_of(&arr, victim, data_blocks_of(&arr, victim)[0]);
            checked_read(
                &mut arr,
                &oracle,
                elem,
                1,
                &mut reads,
                &mut data_loss,
                &mut op_errors,
            );
        }

        // The random op mix: mostly reads, a third writes, the rest
        // rebuild progress.
        let roll = rng.gen_range(0u32..100);
        if roll < 55 {
            let start = rng.gen_range(0..capacity);
            let count = rng.gen_range(1..=(capacity - start).min(2 * data_len));
            checked_read(
                &mut arr,
                &oracle,
                start,
                count,
                &mut reads,
                &mut data_loss,
                &mut op_errors,
            );
        } else if roll < 90 {
            let start = rng.gen_range(0..capacity);
            let count = rng.gen_range(1..=(capacity - start).min(2 * data_len));
            let mut bytes = vec![0u8; count * bs];
            rng.fill_bytes(&mut bytes);
            writes += 1;
            match arr.write(start, &bytes) {
                Ok(()) => oracle[start * bs..(start + count) * bs].copy_from_slice(&bytes),
                Err(_) => op_errors += 1,
            }
        } else if let Err(ArrayError::TooManyFailures { .. }) = arr.rebuild_step(rows) {
            op_errors += 1;
        }
    }

    // Drain: finish any in-flight rebuild, then one last full patrol
    // against the oracle.
    let mut drain_budget = 4 * cfg.stripes * rows;
    while arr.rebuild_progress().is_some() && drain_budget > 0 {
        if arr.rebuild_step(rows).is_err() {
            op_errors += 1;
            break;
        }
        drain_budget -= 1;
    }
    for start in (0..capacity).step_by(data_len) {
        let count = data_len.min(capacity - start);
        checked_read(
            &mut arr,
            &oracle,
            start,
            count,
            &mut reads,
            &mut data_loss,
            &mut op_errors,
        );
    }

    let rebuild_done = arr.rebuild_progress().is_none()
        && arr.stats().rebuilds_completed >= arr.stats().spares_attached;
    ChaosReport {
        code,
        ops: cfg.ops,
        reads,
        writes,
        data_loss,
        op_errors,
        arr: arr.stats().clone(),
        faults: arr.backend_mut().stats().clone(),
        rebuild_done,
        crash_remounts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn small_soak_hits_every_headline_event() {
        let report = soak(dcode(5).unwrap(), &ChaosConfig::new(1, 600));
        assert_eq!(report.data_loss, 0, "{report}");
        assert_eq!(report.op_errors, 0, "{report}");
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn soak_is_deterministic() {
        let a = soak(dcode(5).unwrap(), &ChaosConfig::new(9, 400));
        let b = soak(dcode(5).unwrap(), &ChaosConfig::new(9, 400));
        assert_eq!(a.arr, b.arr);
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.data_loss, b.data_loss);
        assert_eq!(a.faults.transient_reads, b.faults.transient_reads);
    }
}
