#![warn(missing_docs)]
//! # dcode-array
//!
//! The multi-stripe array layer on top of the D-Code reproduction's coding
//! engine — what a filesystem or block device would actually mount:
//!
//! * [`mod@array`] — logical element addressing across stripes, failure
//!   injection, degraded reads, incremental writes, whole-disk rebuild;
//! * [`resilient`] — the same addressing over a fault-injectable
//!   [`DiskBackend`](dcode_faults::DiskBackend): retry policy with backoff
//!   accounting, per-block CRC32 catching silent corruption, sector-level
//!   degraded reads, error-threshold auto-fail, hot-spare rebuild with a
//!   mid-rebuild-correct watermark;
//! * [`journal`] — the write-ahead parity intent journal closing the
//!   RAID-6 write hole: checksummed intent records, commit/retire
//!   lifecycle, and mount-time replay;
//! * [`crashsim`] — the exhaustive crash-point harness: every write-path
//!   operation crashed at every backend-write index, remounted, and
//!   verified for zero acknowledged-write loss and zero
//!   parity-inconsistent stripes;
//! * [`chaos`] — a seeded chaos soak harness replaying randomized
//!   op/fault schedules (including crash-and-remount events) against an
//!   in-memory oracle;
//! * [`device`] — the [`ElementIo`] trait both arrays implement;
//! * [`rotation`] — stripe-by-stripe logical→physical column rotation
//!   (the RAID-5-style global balancing the paper's Section II discusses);
//! * [`loadstudy`] — quantifies why rotation cannot fix an unbalanced code
//!   when stripe popularity is skewed (the paper's argument, measured);
//! * [`scrub`] — silent-corruption detection, localization, and repair
//!   using the two orthogonal parity families;
//! * [`objstore`] — a small object store whose index lives inside the
//!   array, demonstrating the stack end to end.
//!
//! ## Quick example
//!
//! ```
//! use dcode_array::{Array, RotationScheme};
//! use dcode_core::dcode::dcode;
//!
//! let mut array = Array::new(dcode(5).unwrap(), 512, 8, RotationScheme::PerStripe);
//! let data = vec![7u8; 20 * 512];
//! array.write(0, &data).unwrap();
//! array.fail_disk(3).unwrap();
//! assert_eq!(array.read(0, 20).unwrap(), data);   // served degraded
//! array.rebuild_disk(3).unwrap();
//! ```

pub mod array;
pub mod chaos;
pub mod crashsim;
pub mod device;
pub mod journal;
pub mod loadstudy;
pub mod objstore;
pub mod resilient;
pub mod rotation;
pub mod scrub;

pub use array::{Array, ArrayError};
pub use chaos::{soak, ChaosConfig, ChaosReport};
pub use crashsim::{sweep, CrashOp, CrashSimConfig, CrashSweepReport};
pub use device::ElementIo;
pub use journal::{
    journal_blocks_per_disk, scan_journal, JournalScan, JournalSpec, JournalState, ReplayOutcome,
    ReplaySummary,
};
pub use loadstudy::{lf, physical_loads, StripeSkew};
pub use objstore::{ObjectStore, StoreError};
pub use resilient::{
    JournalMutation, ResilientArray, ResilientStats, RetryPolicy, ScrubSummary, SlotState,
};
pub use rotation::RotationScheme;
pub use scrub::{failing_equations, scrub_stripe, scrub_stripe_dry, ScrubReport};
