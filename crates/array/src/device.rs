//! The element-addressed block-device interface shared by the array
//! implementations.
//!
//! Two arrays live in this crate: the in-memory [`Array`](crate::Array)
//! (stripes held directly, binary disk-present/absent failure model) and
//! the backend-driven [`ResilientArray`](crate::ResilientArray) (typed
//! disk errors, retries, checksums, hot-spare rebuild). [`ElementIo`]
//! abstracts over both so consumers like the object store work unchanged
//! on either. Methods take `&mut self` even for reads: a resilient read
//! retries, records errors, and can trigger state transitions.

use crate::array::{Array, ArrayError};

/// Logical element-granular I/O over a RAID-6 array.
pub trait ElementIo {
    /// Total logical data elements.
    fn capacity_elements(&self) -> usize;
    /// Bytes per element.
    fn element_size(&self) -> usize;
    /// Read `count` elements starting at `start`.
    fn read_elements(&mut self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError>;
    /// Write `bytes` (a multiple of the element size) starting at `start`.
    fn write_elements(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError>;
}

impl ElementIo for Array {
    fn capacity_elements(&self) -> usize {
        Array::capacity_elements(self)
    }

    fn element_size(&self) -> usize {
        self.capacity_bytes() / Array::capacity_elements(self)
    }

    fn read_elements(&mut self, start: usize, count: usize) -> Result<Vec<u8>, ArrayError> {
        self.read(start, count)
    }

    fn write_elements(&mut self, start: usize, bytes: &[u8]) -> Result<(), ArrayError> {
        self.write(start, bytes)
    }
}
