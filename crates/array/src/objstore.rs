//! A small object store on top of a RAID-6 array — the kind of
//! application the paper's introduction motivates (cloud/object storage on
//! dependable arrays). Demonstrates that the array layer is a real block
//! device: the store's own metadata lives *inside* the array (first
//! elements of the address space), so a store can be re-opened from a
//! (possibly degraded) array alone.
//!
//! The store is generic over [`ElementIo`], so it runs unchanged on the
//! in-memory [`Array`] or on a backend-driven
//! [`ResilientArray`](crate::ResilientArray) with retries, checksums, and
//! hot-spare rebuild underneath.
//!
//! Design: a fixed metadata region at the front holds a text index
//! (`name,start,len_bytes` per line); objects are allocated first-fit on
//! element ranges after it. Deliberately simple — no compaction, no
//! transactions — but every byte path goes through RAID-6 encode/recover.

use crate::array::{Array, ArrayError};
use crate::device::ElementIo;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying array failure (out of range, too many failed disks…).
    Array(ArrayError),
    /// No contiguous free range large enough.
    NoSpace {
        /// Elements requested.
        needed: usize,
    },
    /// Object name not present.
    NotFound(String),
    /// Object name already present.
    Exists(String),
    /// Names may not contain commas or newlines (index format).
    BadName(String),
    /// The on-array index is malformed (corrupted or not a store).
    BadIndex(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Array(e) => write!(f, "array error: {e}"),
            StoreError::NoSpace { needed } => write!(f, "no space for {needed} elements"),
            StoreError::NotFound(n) => write!(f, "object '{n}' not found"),
            StoreError::Exists(n) => write!(f, "object '{n}' already exists"),
            StoreError::BadName(n) => write!(f, "invalid object name '{n}'"),
            StoreError::BadIndex(why) => write!(f, "corrupt index: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ArrayError> for StoreError {
    fn from(e: ArrayError) -> Self {
        StoreError::Array(e)
    }
}

/// An object store over any RAID-6 array implementing [`ElementIo`].
pub struct ObjectStore<D: ElementIo = Array> {
    array: D,
    /// Elements reserved for the index at the front of the address space.
    meta_elements: usize,
    /// name → (start element, byte length).
    index: BTreeMap<String, (usize, usize)>,
}

impl<D: ElementIo> ObjectStore<D> {
    /// Format a fresh store on `array`, reserving `meta_elements` elements
    /// for the index.
    pub fn format(mut array: D, meta_elements: usize) -> Result<Self, StoreError> {
        assert!(meta_elements >= 1);
        assert!(meta_elements < array.capacity_elements());
        let block = array.element_size();
        array.write_elements(0, &vec![0u8; meta_elements * block])?;
        let mut store = ObjectStore {
            array,
            meta_elements,
            index: BTreeMap::new(),
        };
        store.persist_index()?;
        Ok(store)
    }

    /// Re-open a store from an existing array (reads the on-array index,
    /// reconstructing through failures if needed).
    pub fn open(mut array: D, meta_elements: usize) -> Result<Self, StoreError> {
        let raw = array.read_elements(0, meta_elements)?;
        let text = String::from_utf8_lossy(&raw);
        let mut index = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end_matches('\0').trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ',');
            let (Some(name), Some(start), Some(len)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(StoreError::BadIndex(format!("line '{line}'")));
            };
            let start: usize = start
                .parse()
                .map_err(|_| StoreError::BadIndex(format!("start '{start}'")))?;
            let len: usize = len
                .parse()
                .map_err(|_| StoreError::BadIndex(format!("len '{len}'")))?;
            index.insert(name.to_string(), (start, len));
        }
        Ok(ObjectStore {
            array,
            meta_elements,
            index,
        })
    }

    /// The underlying array (for failure injection in tests/demos).
    pub fn array_mut(&mut self) -> &mut D {
        &mut self.array
    }

    /// The underlying array, read-only (stats snapshots from a server's
    /// metrics path, which must not perturb disk state).
    pub fn array(&self) -> &D {
        &self.array
    }

    /// Whether an object with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Store an object, replacing any existing object of the same name
    /// (the server's `put` semantics — [`ObjectStore::put`] rejects
    /// duplicates, which is right for an archive CLI but wrong for a
    /// key-value front end).
    pub fn upsert(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        if self.index.contains_key(name) {
            self.delete(name)?;
        }
        self.put(name, bytes)
    }

    fn block_size(&self) -> usize {
        self.array.element_size()
    }

    fn elements_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.block_size()).max(1)
    }

    fn persist_index(&mut self) -> Result<(), StoreError> {
        let mut text = String::new();
        for (name, (start, len)) in &self.index {
            text.push_str(&format!("{name},{start},{len}\n"));
        }
        let cap = self.meta_elements * self.block_size();
        if text.len() > cap {
            return Err(StoreError::NoSpace {
                needed: self.elements_for(text.len()) - self.meta_elements,
            });
        }
        let mut buf = text.into_bytes();
        buf.resize(cap, 0);
        self.array.write_elements(0, &buf)?;
        Ok(())
    }

    /// First-fit allocation after the metadata region.
    fn allocate(&self, elements: usize) -> Result<usize, StoreError> {
        let mut used: Vec<(usize, usize)> = self
            .index
            .values()
            .map(|&(start, len)| (start, self.elements_for(len)))
            .collect();
        used.sort_unstable();
        let mut cursor = self.meta_elements;
        for (start, len) in used {
            if start >= cursor + elements {
                break;
            }
            cursor = cursor.max(start + len);
        }
        if cursor + elements <= self.array.capacity_elements() {
            Ok(cursor)
        } else {
            Err(StoreError::NoSpace { needed: elements })
        }
    }

    /// Store an object.
    pub fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        if name.is_empty() || name.contains(',') || name.contains('\n') {
            return Err(StoreError::BadName(name.to_string()));
        }
        if self.index.contains_key(name) {
            return Err(StoreError::Exists(name.to_string()));
        }
        let elements = self.elements_for(bytes.len());
        let start = self.allocate(elements)?;
        let block = self.block_size();
        let mut padded = bytes.to_vec();
        padded.resize(elements * block, 0);
        self.array.write_elements(start, &padded)?;
        self.index.insert(name.to_string(), (start, bytes.len()));
        self.persist_index()
    }

    /// Fetch an object's bytes (works while degraded). Takes `&mut self`:
    /// a resilient read may retry, repair, and transition disk states.
    pub fn get(&mut self, name: &str) -> Result<Vec<u8>, StoreError> {
        let &(start, len) = self
            .index
            .get(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        let count = self.elements_for(len);
        let mut bytes = self.array.read_elements(start, count)?;
        bytes.truncate(len);
        Ok(bytes)
    }

    /// Delete an object (space becomes reusable).
    pub fn delete(&mut self, name: &str) -> Result<(), StoreError> {
        if self.index.remove(name).is_none() {
            return Err(StoreError::NotFound(name.to_string()));
        }
        self.persist_index()
    }

    /// List object names and byte sizes.
    pub fn list(&self) -> Vec<(String, usize)> {
        self.index
            .iter()
            .map(|(n, &(_, len))| (n.clone(), len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::RotationScheme;
    use dcode_core::dcode::dcode;

    fn new_store() -> ObjectStore {
        let array = Array::new(dcode(7).unwrap(), 64, 8, RotationScheme::PerStripe);
        ObjectStore::format(array, 4).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut s = new_store();
        let a: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..1234u32).map(|i| (i * 3) as u8).collect();
        s.put("a", &a).unwrap();
        s.put("b", &b).unwrap();
        assert_eq!(s.get("a").unwrap(), a);
        assert_eq!(s.get("b").unwrap(), b);
        assert_eq!(s.list().len(), 2);
        s.delete("a").unwrap();
        assert!(matches!(s.get("a"), Err(StoreError::NotFound(_))));
        // Freed space is reusable.
        s.put("c", &a).unwrap();
        assert_eq!(s.get("c").unwrap(), a);
        assert_eq!(s.get("b").unwrap(), b);
    }

    #[test]
    fn survives_double_failure_and_reopen() {
        let mut s = new_store();
        let payload: Vec<u8> = (0..3000u32).map(|i| (i * 7) as u8).collect();
        s.put("precious", &payload).unwrap();

        s.array_mut().fail_disk(2).unwrap();
        s.array_mut().fail_disk(5).unwrap();
        // Reads still work while degraded.
        assert_eq!(s.get("precious").unwrap(), payload);

        // A brand-new store instance can re-open from the degraded array
        // alone (the index lives in the array).
        let mut array = Array::new(dcode(7).unwrap(), 64, 8, RotationScheme::PerStripe);
        std::mem::swap(&mut array, s.array_mut());
        let mut reopened = ObjectStore::open(array, 4).unwrap();
        assert_eq!(reopened.get("precious").unwrap(), payload);
    }

    #[test]
    fn allocation_exhaustion_reported() {
        let mut s = new_store();
        let cap = 64 * (8 * dcode(7).unwrap().data_len() - 4);
        let too_big = vec![0u8; cap + 64];
        assert!(matches!(
            s.put("big", &too_big),
            Err(StoreError::NoSpace { .. })
        ));
        // A fitting object still works afterwards.
        s.put("ok", &[1, 2, 3]).unwrap();
        assert_eq!(s.get("ok").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn bad_names_rejected() {
        let mut s = new_store();
        assert!(matches!(s.put("", &[1]), Err(StoreError::BadName(_))));
        assert!(matches!(s.put("a,b", &[1]), Err(StoreError::BadName(_))));
        assert!(matches!(s.put("a\nb", &[1]), Err(StoreError::BadName(_))));
    }

    #[test]
    fn duplicate_put_rejected() {
        let mut s = new_store();
        s.put("x", &[1]).unwrap();
        assert!(matches!(s.put("x", &[2]), Err(StoreError::Exists(_))));
    }

    #[test]
    fn upsert_replaces_and_creates() {
        let mut s = new_store();
        s.upsert("k", &[1, 2, 3]).unwrap(); // create
        assert_eq!(s.get("k").unwrap(), vec![1, 2, 3]);
        let bigger: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        s.upsert("k", &bigger).unwrap(); // replace with a larger value
        assert_eq!(s.get("k").unwrap(), bigger);
        assert!(s.contains("k"));
        assert_eq!(s.list().len(), 1);
    }
}
