//! Textual code specifications — define an array code without recompiling.
//!
//! The whole toolchain (codec, simulators, recovery, array layer) is
//! generic over [`CodeLayout`], so a code is just data. This module gives
//! that data a text form:
//!
//! ```text
//! # anything after '#' is a comment
//! name    = Tiny
//! prime   = 3
//! rows    = 2
//! cols    = 3
//! row (0,2) = (0,0) (0,1)
//! diagonal (1,2) = (1,0) (1,1) (0,2)
//! ```
//!
//! One header block, then one line per equation: `<kind> <parity-cell> =
//! <member-cell>…`. Kinds: `horizontal`, `deployment`, `row`, `diagonal`,
//! `anti-diagonal`. [`parse_spec`] builds (and structurally validates) the
//! layout; [`format_spec`] is its inverse. Fault tolerance is *not* implied
//! — run [`crate::mds::verify_mds`] on anything you intend to trust.

use crate::equation::EquationKind;
use crate::grid::Cell;
use crate::layout::{CodeLayout, LayoutBuilder};
use std::fmt;

/// Errors from [`parse_spec`], with 1-based line numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError {
    /// Offending line (0 for document-level problems).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, reason: impl Into<String>) -> SpecError {
    SpecError {
        line,
        reason: reason.into(),
    }
}

fn parse_kind(s: &str) -> Option<EquationKind> {
    match s {
        "horizontal" => Some(EquationKind::Horizontal),
        "deployment" => Some(EquationKind::Deployment),
        "row" => Some(EquationKind::Row),
        "diagonal" => Some(EquationKind::Diagonal),
        "anti-diagonal" => Some(EquationKind::AntiDiagonal),
        _ => None,
    }
}

fn parse_cell(tok: &str, line: usize) -> Result<Cell, SpecError> {
    let inner = tok
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| err(line, format!("expected (r,c), got '{tok}'")))?;
    let (r, c) = inner
        .split_once(',')
        .ok_or_else(|| err(line, format!("expected (r,c), got '{tok}'")))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| err(line, format!("bad coordinate in '{tok}'")))
    };
    Ok(Cell::new(parse(r)?, parse(c)?))
}

/// Parse a code specification into a validated [`CodeLayout`].
pub fn parse_spec(text: &str) -> Result<CodeLayout, SpecError> {
    let mut name: Option<String> = None;
    let mut prime: Option<usize> = None;
    let mut rows: Option<usize> = None;
    let mut cols: Option<usize> = None;
    let mut equations: Vec<(usize, EquationKind, Cell, Vec<Cell>)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some((key, value)) = stripped.split_once('=').and_then(|(k, v)| {
            let k = k.trim();
            matches!(k, "name" | "prime" | "rows" | "cols").then(|| (k, v.trim()))
        }) {
            match key {
                "name" => name = Some(value.to_string()),
                "prime" => {
                    prime = Some(value.parse().map_err(|_| err(line_no, "bad prime value"))?);
                }
                "rows" => rows = Some(value.parse().map_err(|_| err(line_no, "bad rows value"))?),
                "cols" => cols = Some(value.parse().map_err(|_| err(line_no, "bad cols value"))?),
                _ => unreachable!("filtered above"),
            }
            continue;
        }
        // Equation line: "<kind> (r,c) = (r,c) (r,c) ..."
        let (lhs, rhs) = stripped
            .split_once('=')
            .ok_or_else(|| err(line_no, "expected 'kind (r,c) = members…'"))?;
        let mut lhs_parts = lhs.split_whitespace();
        let kind_tok = lhs_parts
            .next()
            .ok_or_else(|| err(line_no, "missing equation kind"))?;
        let kind = parse_kind(kind_tok)
            .ok_or_else(|| err(line_no, format!("unknown equation kind '{kind_tok}'")))?;
        let parity_tok = lhs_parts
            .next()
            .ok_or_else(|| err(line_no, "missing parity cell"))?;
        if lhs_parts.next().is_some() {
            return Err(err(line_no, "unexpected tokens before '='"));
        }
        let parity = parse_cell(parity_tok, line_no)?;
        let members: Vec<Cell> = rhs
            .split_whitespace()
            .map(|tok| parse_cell(tok, line_no))
            .collect::<Result<_, _>>()?;
        if members.is_empty() {
            return Err(err(line_no, "equation has no members"));
        }
        equations.push((line_no, kind, parity, members));
    }

    let rows = rows.ok_or_else(|| err(0, "missing 'rows' header"))?;
    let cols = cols.ok_or_else(|| err(0, "missing 'cols' header"))?;
    let mut b = LayoutBuilder::new(
        name.unwrap_or_else(|| "custom".to_string()),
        prime.unwrap_or(cols),
        rows,
        cols,
    );
    for (_, kind, parity, members) in &equations {
        b.equation(*kind, *parity, members.clone());
    }
    b.build()
        .map_err(|e| err(0, format!("invalid layout: {e}")))
}

/// Serialize a layout to the spec format ([`parse_spec`]'s inverse).
pub fn format_spec(layout: &CodeLayout) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "name = {}\nprime = {}\nrows = {}\ncols = {}\n",
        layout.name(),
        layout.prime(),
        layout.rows(),
        layout.disks()
    ));
    for eq in layout.equations() {
        out.push_str(&format!(
            "{} ({},{}) =",
            eq.kind, eq.parity.row, eq.parity.col
        ));
        for m in &eq.members {
            out.push_str(&format!(" ({},{})", m.row, m.col));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcode::{canonical_equations, dcode};
    use crate::mds::verify_mds;

    #[test]
    fn roundtrip_dcode() {
        let original = dcode(7).unwrap();
        let text = format_spec(&original);
        let parsed = parse_spec(&text).unwrap();
        assert_eq!(parsed.name(), "D-Code");
        assert_eq!(parsed.prime(), 7);
        assert_eq!(canonical_equations(&parsed), canonical_equations(&original));
        verify_mds(&parsed).unwrap();
    }

    #[test]
    fn hand_written_spec_parses() {
        let text = "
            # a RAID-4-oid toy
            name = Tiny
            rows = 2
            cols = 3
            row (0,2) = (0,0) (0,1)
            row (1,2) = (1,0) (1,1)
        ";
        let l = parse_spec(text).unwrap();
        assert_eq!(l.name(), "Tiny");
        assert_eq!(l.data_len(), 4);
        assert_eq!(l.equations().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad_kind = "rows = 1\ncols = 2\nzigzag (0,1) = (0,0)";
        assert_eq!(parse_spec(bad_kind).unwrap_err().line, 3);

        let bad_cell = "rows = 1\ncols = 2\nrow (0,1) = (0 0)";
        assert_eq!(parse_spec(bad_cell).unwrap_err().line, 3);

        let missing_header = "row (0,1) = (0,0)";
        assert_eq!(parse_spec(missing_header).unwrap_err().line, 0);

        let invalid_layout = "rows = 1\ncols = 3\nrow (0,2) = (0,0)"; // (0,1) unprotected
        let e = parse_spec(invalid_layout).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.reason.contains("invalid layout"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nname = C # inline\nrows = 1\ncols = 2\n\nrow (0,1) = (0,0)\n";
        let l = parse_spec(text).unwrap();
        assert_eq!(l.name(), "C");
    }
}
