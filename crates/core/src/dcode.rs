//! The paper's contribution: **D-Code** (Deployment Code).
//!
//! A stripe is an `n × n` matrix (`n` prime, `n ≥ 5`). Rows `0..n-3` hold
//! data; row `n-2` holds *horizontal* parities (each covering `n-2`
//! logically-continuous data elements, wrapping row-major); row `n-1` holds
//! *deployment* parities (diagonal-style parities whose members are laid out
//! by the paper's down-left deployment walk).
//!
//! Three independent constructions are provided and tested equal:
//!
//! 1. [`dcode`] — the closed-form encoding rules, equations (1) and (2) of
//!    the paper;
//! 2. [`dcode_procedural`] — the 4-step numbering/labelling procedure
//!    (Section III-A's operational description);
//! 3. [`dcode_via_xcode_reordering`] — Theorem 1's construction: reorder the
//!    elements of each X-Code column with `E(i,j) ↦ N(⟨(n−3)/2·(j−i)⟩_{n−2}, j)`.
//!
//! Their agreement (checked in the test suite for every supported prime) is
//! the strongest evidence available that this crate implements the paper's
//! code exactly, and Theorem 1 + the X-Code MDS property give the
//! fault-tolerance proof, which [`crate::mds::verify_mds`] re-checks
//! exhaustively.

use crate::equation::EquationKind;
use crate::grid::Cell;
use crate::layout::{CodeLayout, LayoutBuilder};
use crate::modmath::{is_prime, md};

/// Errors constructing a D-Code (or X-Code style) layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConstructError {
    /// The stripe parameter must be a prime number (Theorem 2).
    NotPrime(usize),
    /// Primes below 5 give degenerate stripes with no or trivial data rows.
    TooSmall(usize),
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::NotPrime(n) => {
                write!(
                    f,
                    "stripe parameter {n} is not prime (required by Theorem 2)"
                )
            }
            ConstructError::TooSmall(n) => write!(f, "stripe parameter {n} is below 5"),
        }
    }
}

impl std::error::Error for ConstructError {}

fn check_param(n: usize) -> Result<(), ConstructError> {
    if !is_prime(n) {
        return Err(ConstructError::NotPrime(n));
    }
    if n < 5 {
        return Err(ConstructError::TooSmall(n));
    }
    Ok(())
}

/// Build D-Code over `n` disks from the paper's closed-form encoding rules.
///
/// Equation (1), horizontal parities (row `n−2`):
///
/// ```text
/// P[n−2][i] = ⊕_{j=0}^{n−3}  D[ ⟨(n−3)/2 · (⟨i+j+2⟩ₙ − j)⟩_{n−2} ][ ⟨i+j+2⟩ₙ ]
/// ```
///
/// Equation (2), deployment parities (row `n−1`):
///
/// ```text
/// P[n−1][i] = ⊕_{j=0}^{n−3}  D[ ⟨(n−3)/2 · (⟨i−j−2⟩ₙ − j)⟩_{n−2} ][ ⟨i−j−2⟩ₙ ]
/// ```
///
/// # Panics
/// Never for accepted parameters (invalid `n` returns an error); the
/// builder's structural validation is an internal-consistency guard on
/// the closed forms above.
pub fn dcode(n: usize) -> Result<CodeLayout, ConstructError> {
    check_param(n)?;
    let half = ((n - 3) / 2) as i64;
    let mut b = LayoutBuilder::new("D-Code", n, n, n);
    for i in 0..n {
        let horizontal: Vec<Cell> = (0..n - 2)
            .map(|j| {
                let col = md(i as i64 + j as i64 + 2, n);
                let row = md(half * (col as i64 - j as i64), n - 2);
                Cell::new(row, col)
            })
            .collect();
        b.equation(EquationKind::Horizontal, Cell::new(n - 2, i), horizontal);

        let deployment: Vec<Cell> = (0..n - 2)
            .map(|j| {
                let col = md(i as i64 - j as i64 - 2, n);
                let row = md(half * (col as i64 - j as i64), n - 2);
                Cell::new(row, col)
            })
            .collect();
        b.equation(EquationKind::Deployment, Cell::new(n - 1, i), deployment);
    }
    Ok(b.build()
        .expect("closed-form D-Code construction is structurally valid"))
}

/// The paper's *next horizontal element* ordering: row-major over the data
/// rows, wrapping from the end of a row to the start of the next.
///
/// Returns all `n(n−2)` data cells in horizontal-walk order.
pub fn horizontal_walk(n: usize) -> Vec<Cell> {
    (0..n * (n - 2)).map(|m| Cell::new(m / n, m % n)).collect()
}

/// The paper's *next deployment element* ordering: start at `D(0,0)`; from
/// `D(i,j)` move to the element below-left, wrapping the row modulo `n−2`,
/// unless `j = 0`, in which case move to the last element of the current
/// row.
///
/// Returns all `n(n−2)` data cells in deployment-walk order.
pub fn deployment_walk(n: usize) -> Vec<Cell> {
    let total = n * (n - 2);
    let mut walk = Vec::with_capacity(total);
    let mut cur = Cell::new(0, 0);
    for _ in 0..total {
        walk.push(cur);
        cur = if cur.col == 0 {
            Cell::new(cur.row, n - 1)
        } else {
            Cell::new((cur.row + 1) % (n - 2), cur.col - 1)
        };
    }
    walk
}

/// Build D-Code from the paper's operational 4-step procedure (Section
/// III-A): number the data elements along the horizontal/deployment walks,
/// split them into `n` groups of `n−2`, and attach each group to the parity
/// position the procedure names.
///
/// * Horizontal group `k` (elements `k(n−2) .. k(n−2)+n−3` of the horizontal
///   walk) stores its XOR at `P[n−2][⟨y+1⟩ₙ]`, where `y` is the column of the
///   group's *last* element.
/// * Deployment group `g` (same split of the deployment walk) stores its XOR
///   at `P[n−1][⟨2(g+1)⟩ₙ]` (the paper labels parity columns 2, 4, …, ⟨2n⟩ₙ
///   with letters A, B, …).
///
/// # Panics
/// Never for accepted parameters (invalid `n` returns an error); the
/// builder's structural validation guards the procedure's internal
/// consistency.
pub fn dcode_procedural(n: usize) -> Result<CodeLayout, ConstructError> {
    check_param(n)?;
    let mut b = LayoutBuilder::new("D-Code", n, n, n);

    let hwalk = horizontal_walk(n);
    for k in 0..n {
        let group = &hwalk[k * (n - 2)..(k + 1) * (n - 2)];
        let last = group[n - 3];
        let parity_col = md(last.col as i64 + 1, n);
        b.equation(
            EquationKind::Horizontal,
            Cell::new(n - 2, parity_col),
            group.to_vec(),
        );
    }

    let dwalk = deployment_walk(n);
    for g in 0..n {
        let group = &dwalk[g * (n - 2)..(g + 1) * (n - 2)];
        let parity_col = md(2 * (g as i64 + 1), n);
        b.equation(
            EquationKind::Deployment,
            Cell::new(n - 1, parity_col),
            group.to_vec(),
        );
    }

    Ok(b.build()
        .expect("procedural D-Code construction is structurally valid"))
}

/// Build X-Code over `n` disks (Xu & Bruck 1999), as restated by the paper's
/// equations (4) and (5):
///
/// ```text
/// E[n−2][i] = ⊕_{j=0}^{n−3} E[j][⟨i+j+2⟩ₙ]      (diagonal parities)
/// E[n−1][i] = ⊕_{j=0}^{n−3} E[j][⟨i−j−2⟩ₙ]      (anti-diagonal parities)
/// ```
///
/// Exposed here because the Theorem-1 construction and the correctness
/// argument need it; the `dcode-baselines` crate re-exports it as the
/// evaluation baseline.
///
/// # Panics
/// Never for accepted parameters (invalid `n` returns an error); the
/// builder's structural validation guards the closed forms' internal
/// consistency.
pub fn xcode(n: usize) -> Result<CodeLayout, ConstructError> {
    check_param(n)?;
    let mut b = LayoutBuilder::new("X-Code", n, n, n);
    for i in 0..n {
        let diag: Vec<Cell> = (0..n - 2)
            .map(|j| Cell::new(j, md(i as i64 + j as i64 + 2, n)))
            .collect();
        b.equation(EquationKind::Diagonal, Cell::new(n - 2, i), diag);

        let anti: Vec<Cell> = (0..n - 2)
            .map(|j| Cell::new(j, md(i as i64 - j as i64 - 2, n)))
            .collect();
        b.equation(EquationKind::AntiDiagonal, Cell::new(n - 1, i), anti);
    }
    Ok(b.build()
        .expect("X-Code construction is structurally valid"))
}

/// Build D-Code by reordering the elements of each X-Code column (Theorem 1):
/// the X-Code element at `(i, j)` (for data rows `i ≤ n−3`) moves to row
/// `⟨(n−3)/2 · (j − i)⟩_{n−2}` of the same column; parity rows stay in place.
/// X-Code's diagonal equations become D-Code's horizontal equations and its
/// anti-diagonals become deployment equations.
///
/// # Panics
/// Never for accepted parameters (invalid `n` returns an error); the
/// builder's structural validation guards the relocation's internal
/// consistency.
pub fn dcode_via_xcode_reordering(n: usize) -> Result<CodeLayout, ConstructError> {
    let x = xcode(n)?;
    let half = ((n - 3) / 2) as i64;
    let relocate = |c: Cell| -> Cell {
        if c.row <= n - 3 {
            Cell::new(md(half * (c.col as i64 - c.row as i64), n - 2), c.col)
        } else {
            c
        }
    };
    let mut b = LayoutBuilder::new("D-Code", n, n, n);
    for eq in x.equations() {
        let kind = match eq.kind {
            EquationKind::Diagonal => EquationKind::Horizontal,
            EquationKind::AntiDiagonal => EquationKind::Deployment,
            k => k,
        };
        let members: Vec<Cell> = eq.members.iter().map(|&m| relocate(m)).collect();
        b.equation(kind, relocate(eq.parity), members);
    }
    Ok(b.build().expect("reordered X-Code is structurally valid"))
}

/// Canonical form of a layout's equation system — kinds, parity cells, and
/// sorted member lists, sorted by parity cell — for structural comparison of
/// two constructions.
pub fn canonical_equations(layout: &CodeLayout) -> Vec<(EquationKind, Cell, Vec<Cell>)> {
    let mut eqs: Vec<(EquationKind, Cell, Vec<Cell>)> = layout
        .equations()
        .iter()
        .map(|e| {
            let mut m = e.members.clone();
            m.sort_unstable();
            (e.kind, e.parity, m)
        })
        .collect();
    eqs.sort_by_key(|(_, p, _)| *p);
    eqs
}

/// Primes the paper evaluates (`p = 5, 7, 11, 13`).
pub const PAPER_PRIMES: [usize; 4] = [5, 7, 11, 13];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn d(r: usize, c: usize) -> Cell {
        Cell::new(r, c)
    }

    /// The paper's worked example for equation (1): for n = 7,
    /// `P(5,1) = D(1,3) ⊕ D(1,4) ⊕ D(1,5) ⊕ D(1,6) ⊕ D(2,0)`.
    #[test]
    fn paper_example_horizontal_p51() {
        let l = dcode(7).unwrap();
        let eq = l.equations().iter().find(|e| e.parity == d(5, 1)).unwrap();
        assert_eq!(eq.kind, EquationKind::Horizontal);
        let members: BTreeSet<Cell> = eq.members.iter().copied().collect();
        assert_eq!(
            members,
            BTreeSet::from([d(1, 3), d(1, 4), d(1, 5), d(1, 6), d(2, 0)])
        );
    }

    /// The paper's worked example for equation (2): for n = 7,
    /// `P(6,2) = D(0,0) ⊕ D(0,6) ⊕ D(1,5) ⊕ D(2,4) ⊕ D(3,3)`.
    #[test]
    fn paper_example_deployment_p62() {
        let l = dcode(7).unwrap();
        let eq = l.equations().iter().find(|e| e.parity == d(6, 2)).unwrap();
        assert_eq!(eq.kind, EquationKind::Deployment);
        let members: BTreeSet<Cell> = eq.members.iter().copied().collect();
        assert_eq!(
            members,
            BTreeSet::from([d(0, 0), d(0, 6), d(1, 5), d(2, 4), d(3, 3)])
        );
    }

    /// Figure 2(a): the horizontal walk for n = 7 starts
    /// D(0,0), D(0,1), … and the 10th–14th elements are
    /// D(1,3), D(1,4), D(1,5), D(1,6), D(2,0).
    #[test]
    fn figure2a_horizontal_walk() {
        let w = horizontal_walk(7);
        assert_eq!(&w[0..3], &[d(0, 0), d(0, 1), d(0, 2)]);
        assert_eq!(&w[10..15], &[d(1, 3), d(1, 4), d(1, 5), d(1, 6), d(2, 0)]);
        assert_eq!(w.len(), 35);
    }

    /// Figure 2(b): the deployment walk for n = 7 starts
    /// D(0,0), D(0,6), D(1,5), D(2,4), D(3,3) (the letter-'A' group) and ends
    /// at D(4,1)… the paper says the walk terminates at D(n−3, 1).
    #[test]
    fn figure2b_deployment_walk() {
        let w = deployment_walk(7);
        assert_eq!(&w[0..5], &[d(0, 0), d(0, 6), d(1, 5), d(2, 4), d(3, 3)]);
        assert_eq!(*w.last().unwrap(), d(7 - 3, 1));
        // The walk must visit every data cell exactly once.
        let set: BTreeSet<Cell> = w.iter().copied().collect();
        assert_eq!(set.len(), 35);
        assert!(set.iter().all(|c| c.row <= 4 && c.col <= 6));
    }

    #[test]
    fn deployment_walk_is_a_permutation_for_all_paper_primes() {
        for n in PAPER_PRIMES {
            let w = deployment_walk(n);
            let set: BTreeSet<Cell> = w.iter().copied().collect();
            assert_eq!(set.len(), n * (n - 2), "walk revisits a cell for n={n}");
        }
    }

    /// Figure 2(b)'s bottom row: deployment parity letters A..G sit at
    /// columns 2, 4, 6, 1, 3, 5, 0 — i.e. group g's parity is at ⟨2(g+1)⟩₇.
    #[test]
    fn figure2b_deployment_parity_columns() {
        let l = dcode_procedural(7).unwrap();
        let w = deployment_walk(7);
        let expected_cols = [2usize, 4, 6, 1, 3, 5, 0];
        for (g, &col) in expected_cols.iter().enumerate() {
            let eq = l
                .equations()
                .iter()
                .find(|e| e.parity == d(6, col))
                .unwrap();
            let members: BTreeSet<Cell> = eq.members.iter().copied().collect();
            let group: BTreeSet<Cell> = w[g * 5..(g + 1) * 5].iter().copied().collect();
            assert_eq!(members, group, "deployment group {g} at column {col}");
        }
    }

    #[test]
    fn procedural_equals_closed_form() {
        for n in PAPER_PRIMES {
            let a = dcode(n).unwrap();
            let b = dcode_procedural(n).unwrap();
            assert_eq!(
                canonical_equations(&a),
                canonical_equations(&b),
                "procedural and closed-form constructions differ for n={n}"
            );
        }
    }

    #[test]
    fn theorem1_xcode_reordering_equals_closed_form() {
        for n in PAPER_PRIMES {
            let a = dcode(n).unwrap();
            let b = dcode_via_xcode_reordering(n).unwrap();
            assert_eq!(
                canonical_equations(&a),
                canonical_equations(&b),
                "Theorem 1 reordering differs from equations (1)-(2) for n={n}"
            );
        }
    }

    #[test]
    fn layout_shape() {
        for n in PAPER_PRIMES {
            let l = dcode(n).unwrap();
            assert_eq!(l.disks(), n);
            assert_eq!(l.rows(), n);
            assert_eq!(l.data_len(), n * (n - 2));
            // Parities exactly fill the last two rows.
            for c in l.grid().cells() {
                let should_be_parity = c.row >= n - 2;
                assert_eq!(l.kind(c).is_parity(), should_be_parity, "cell {c}");
            }
            // Every disk carries exactly 2 parity elements: perfectly even.
            for col in 0..n {
                assert_eq!(l.parity_count_in_col(col), 2);
            }
        }
    }

    #[test]
    fn each_data_element_in_exactly_two_equations() {
        for n in PAPER_PRIMES {
            let l = dcode(n).unwrap();
            for &cell in l.data_cells() {
                let eqs = l.member_eqs(cell);
                assert_eq!(
                    eqs.len(),
                    2,
                    "data {cell} in {} equations (n={n})",
                    eqs.len()
                );
                let kinds: BTreeSet<EquationKind> =
                    eqs.iter().map(|&i| l.equation(i).kind).collect();
                assert_eq!(
                    kinds,
                    BTreeSet::from([EquationKind::Horizontal, EquationKind::Deployment])
                );
            }
        }
    }

    #[test]
    fn optimal_update_complexity() {
        // Updating any single data element dirties exactly two parities
        // (Section III-D, "The Optimal Update Complexity").
        for n in PAPER_PRIMES {
            let l = dcode(n).unwrap();
            for &cell in l.data_cells() {
                assert_eq!(l.update_closure(&[cell]).len(), 2);
            }
        }
    }

    #[test]
    fn rejects_non_prime_and_tiny() {
        assert_eq!(dcode(9).unwrap_err(), ConstructError::NotPrime(9));
        assert_eq!(dcode(4).unwrap_err(), ConstructError::NotPrime(4));
        assert_eq!(dcode(3).unwrap_err(), ConstructError::TooSmall(3));
        assert_eq!(dcode(2).unwrap_err(), ConstructError::TooSmall(2));
        assert!(dcode(17).is_ok());
    }

    #[test]
    fn xcode_shape() {
        let l = xcode(7).unwrap();
        assert_eq!(l.disks(), 7);
        assert_eq!(l.data_len(), 35);
        for col in 0..7 {
            assert_eq!(l.parity_count_in_col(col), 2);
        }
        // X-Code parities cover diagonals: spot-check E(5,0) covers
        // E(j, <j+2>_7) for j = 0..4.
        let eq = l.equations().iter().find(|e| e.parity == d(5, 0)).unwrap();
        let members: BTreeSet<Cell> = eq.members.iter().copied().collect();
        assert_eq!(
            members,
            BTreeSet::from([d(0, 2), d(1, 3), d(2, 4), d(3, 5), d(4, 6)])
        );
    }

    #[test]
    fn horizontal_groups_are_logically_continuous() {
        // The whole point of D-Code's horizontal parity: each equation's
        // members form a run of consecutive logical addresses.
        for n in PAPER_PRIMES {
            let l = dcode(n).unwrap();
            for eq in l
                .equations()
                .iter()
                .filter(|e| e.kind == EquationKind::Horizontal)
            {
                let mut logical: Vec<usize> = eq
                    .members
                    .iter()
                    .map(|&m| l.logical_of(m).unwrap())
                    .collect();
                logical.sort_unstable();
                let first = logical[0];
                assert!(
                    logical.iter().enumerate().all(|(k, &v)| v == first + k),
                    "horizontal members not continuous for n={n}: {logical:?}"
                );
            }
        }
    }
}
