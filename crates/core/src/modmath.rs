//! Modular arithmetic helpers used by the code constructions.
//!
//! The paper writes `<x>_n` for `x mod n` with the mathematician's convention
//! that the result is always in `0..n`, even for negative `x`. [`md`] is that
//! operator.

/// `<a>_m`: Euclidean remainder of `a` modulo `m`, always in `0..m`.
///
/// ```
/// use dcode_core::modmath::md;
/// assert_eq!(md(-8, 5), 2);
/// assert_eq!(md(7, 7), 0);
/// ```
pub fn md(a: i64, m: usize) -> usize {
    debug_assert!(m > 0);
    a.rem_euclid(m as i64) as usize
}

/// Primality by trial division — plenty for stripe sizes (primes ≤ a few
/// hundred).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// Modular multiplicative inverse of `a` modulo prime `p` (Fermat).
///
/// # Panics
/// Panics if `p` is not prime or `a ≡ 0 (mod p)`.
pub fn inv_mod_prime(a: usize, p: usize) -> usize {
    assert!(is_prime(p), "{p} is not prime");
    let a = a % p;
    assert!(a != 0, "0 has no inverse");
    // a^(p-2) mod p by square-and-multiply.
    let mut base = a as u128;
    let mut exp = (p - 2) as u32;
    let m = p as u128;
    let mut acc: u128 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    acc as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_matches_paper_convention() {
        // `<−8>_5 = 2` appears in the hand-check of D-Code equation (1).
        assert_eq!(md(-8, 5), 2);
        assert_eq!(md(-1, 7), 6);
        assert_eq!(md(0, 3), 0);
        assert_eq!(md(14, 7), 0);
    }

    #[test]
    fn md_agrees_with_rem_for_nonnegative() {
        for a in 0..100i64 {
            for m in 1..20usize {
                assert_eq!(md(a, m), (a as usize) % m);
            }
        }
    }

    #[test]
    fn primes() {
        let primes: Vec<usize> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn inverses() {
        for p in [5usize, 7, 11, 13, 17] {
            for a in 1..p {
                assert_eq!(a * inv_mod_prime(a, p) % p, 1);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_inverse_panics() {
        inv_mod_prime(0, 7);
    }
}
