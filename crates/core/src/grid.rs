//! Element-grid primitives shared by every array code in the workspace.
//!
//! A RAID-6 *array code* views one stripe as a small matrix of *elements*
//! (fixed-size blocks). Rows are offsets within a disk, columns are disks.
//! [`Cell`] names one element, [`Grid`] fixes the matrix dimensions, and
//! [`CellKind`] says whether a position stores user data or a parity value.

use std::fmt;

/// Coordinates of one element within a stripe: `row` is the offset inside a
/// disk, `col` is the disk index.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cell {
    /// Row index (offset within a disk), `0..grid.rows`.
    pub row: usize,
    /// Column index (disk number), `0..grid.cols`.
    pub col: usize,
}

impl Cell {
    /// Convenience constructor.
    pub const fn new(row: usize, col: usize) -> Self {
        Cell { row, col }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Stripe matrix dimensions.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Grid {
    /// Number of element rows per stripe.
    pub rows: usize,
    /// Number of columns, i.e. disks in the array.
    pub cols: usize,
}

impl Grid {
    /// Create a grid.
    ///
    /// # Panics
    /// Panics on zero dimensions (a stripe is never empty).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Grid { rows, cols }
    }

    /// Total number of elements in the stripe.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the grid holds no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear index of `cell`, for dense per-cell tables.
    pub fn index(&self, cell: Cell) -> usize {
        debug_assert!(
            self.contains(cell),
            "{cell} outside {}x{}",
            self.rows,
            self.cols
        );
        cell.row * self.cols + cell.col
    }

    /// Inverse of [`Grid::index`].
    pub fn cell_at(&self, index: usize) -> Cell {
        debug_assert!(index < self.len());
        Cell::new(index / self.cols, index % self.cols)
    }

    /// Whether `cell` lies inside the grid.
    pub fn contains(&self, cell: Cell) -> bool {
        cell.row < self.rows && cell.col < self.cols
    }

    /// Iterate over every cell in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        let cols = self.cols;
        (0..self.len()).map(move |i| Cell::new(i / cols, i % cols))
    }

    /// Iterate over the cells of one column, top to bottom.
    ///
    /// # Panics
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> impl Iterator<Item = Cell> + '_ {
        assert!(col < self.cols, "column {col} out of range");
        (0..self.rows).map(move |r| Cell::new(r, col))
    }

    /// Iterate over the cells of one row, left to right.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> impl Iterator<Item = Cell> + '_ {
        assert!(row < self.rows, "row {row} out of range");
        (0..self.cols).map(move |c| Cell::new(row, c))
    }
}

/// What a grid position stores.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CellKind {
    /// User data.
    Data,
    /// A parity element; the payload is the index of the equation (in the
    /// layout's equation list) whose result is stored here.
    Parity(usize),
}

impl CellKind {
    /// `true` for data positions.
    pub fn is_data(&self) -> bool {
        matches!(self, CellKind::Data)
    }

    /// `true` for parity positions.
    pub fn is_parity(&self) -> bool {
        matches!(self, CellKind::Parity(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = Grid::new(5, 7);
        for i in 0..g.len() {
            assert_eq!(g.index(g.cell_at(i)), i);
        }
    }

    #[test]
    fn cells_row_major() {
        let g = Grid::new(2, 3);
        let cells: Vec<Cell> = g.cells().collect();
        assert_eq!(
            cells,
            vec![
                Cell::new(0, 0),
                Cell::new(0, 1),
                Cell::new(0, 2),
                Cell::new(1, 0),
                Cell::new(1, 1),
                Cell::new(1, 2),
            ]
        );
    }

    #[test]
    fn column_iteration() {
        let g = Grid::new(3, 4);
        let col: Vec<Cell> = g.column(2).collect();
        assert_eq!(col, vec![Cell::new(0, 2), Cell::new(1, 2), Cell::new(2, 2)]);
    }

    #[test]
    fn row_iteration() {
        let g = Grid::new(3, 4);
        let row: Vec<Cell> = g.row(1).collect();
        assert_eq!(row.len(), 4);
        assert!(row.iter().all(|c| c.row == 1));
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = Grid::new(3, 3);
        assert!(g.contains(Cell::new(2, 2)));
        assert!(!g.contains(Cell::new(3, 0)));
        assert!(!g.contains(Cell::new(0, 3)));
    }

    #[test]
    fn kind_predicates() {
        assert!(CellKind::Data.is_data());
        assert!(!CellKind::Data.is_parity());
        assert!(CellKind::Parity(0).is_parity());
    }

    #[test]
    #[should_panic]
    fn zero_grid_panics() {
        let _ = Grid::new(0, 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Cell::new(5, 1).to_string(), "(5,1)");
    }
}
