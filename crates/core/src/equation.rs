//! XOR parity equations.
//!
//! Every code in this workspace is defined by a list of equations of the form
//! `parity = member₀ ⊕ member₁ ⊕ …`. Members are usually data cells, but some
//! codes (RDP's diagonal parity, HDP's anti-diagonals) include *other parity
//! cells* as members; the machinery here is agnostic.

use crate::grid::Cell;
use std::fmt;

/// The family an equation belongs to. Purely descriptive — decoding and
/// accounting never branch on it — but it drives layout printing, per-kind
/// statistics, and the degraded-read planner's reporting.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EquationKind {
    /// D-Code horizontal parity: XOR of logically continuous data elements.
    Horizontal,
    /// D-Code deployment parity (the paper's special diagonal walk).
    Deployment,
    /// Plain row parity (RDP, EVENODD, H-Code, HDP horizontal).
    Row,
    /// Diagonal parity of slope +1 (RDP, EVENODD, X-Code).
    Diagonal,
    /// Anti-diagonal parity of slope −1 (X-Code, H-Code, HDP).
    AntiDiagonal,
}

impl fmt::Display for EquationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EquationKind::Horizontal => "horizontal",
            EquationKind::Deployment => "deployment",
            EquationKind::Row => "row",
            EquationKind::Diagonal => "diagonal",
            EquationKind::AntiDiagonal => "anti-diagonal",
        };
        f.write_str(s)
    }
}

/// One parity equation: the element at `parity` stores the XOR of all
/// `members`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Equation {
    /// Which family of parity this is.
    pub kind: EquationKind,
    /// The cell storing the XOR result.
    pub parity: Cell,
    /// Cells XOR-ed together to produce the parity. Order is irrelevant to
    /// the XOR but preserved as constructed (useful for printing the paper's
    /// worked examples verbatim).
    pub members: Vec<Cell>,
}

impl Equation {
    /// Create an equation after light sanity checks (no duplicate members,
    /// parity not among its own members).
    pub fn new(kind: EquationKind, parity: Cell, members: Vec<Cell>) -> Self {
        debug_assert!(
            !members.contains(&parity),
            "parity {parity} appears among its own members"
        );
        debug_assert!(
            {
                let mut sorted = members.clone();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate member in equation at {parity}"
        );
        Equation {
            kind,
            parity,
            members,
        }
    }

    /// All cells constrained by this equation: the parity plus every member.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        std::iter::once(self.parity).chain(self.members.iter().copied())
    }

    /// Number of cells constrained (members + the parity itself).
    pub fn arity(&self) -> usize {
        self.members.len() + 1
    }

    /// XOR operations needed to evaluate this equation from scratch.
    pub fn xor_count(&self) -> usize {
        self.members.len().saturating_sub(1)
    }

    /// Whether `cell` participates (as parity or member).
    pub fn involves(&self, cell: Cell) -> bool {
        self.parity == cell || self.members.contains(&cell)
    }
}

impl fmt::Display for Equation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} =", self.kind, self.parity)?;
        for (i, m) in self.members.iter().enumerate() {
            if i == 0 {
                write!(f, " {m}")?;
            } else {
                write!(f, " ^ {m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq() -> Equation {
        Equation::new(
            EquationKind::Horizontal,
            Cell::new(5, 1),
            vec![
                Cell::new(1, 3),
                Cell::new(1, 4),
                Cell::new(1, 5),
                Cell::new(1, 6),
                Cell::new(2, 0),
            ],
        )
    }

    #[test]
    fn arity_and_xors() {
        let e = eq();
        assert_eq!(e.arity(), 6);
        // n−3 = 4 XORs for a 5-member D-Code equation at n = 7.
        assert_eq!(e.xor_count(), 4);
    }

    #[test]
    fn involves_parity_and_members() {
        let e = eq();
        assert!(e.involves(Cell::new(5, 1)));
        assert!(e.involves(Cell::new(2, 0)));
        assert!(!e.involves(Cell::new(0, 0)));
    }

    #[test]
    fn cells_includes_parity_first() {
        let e = eq();
        let cells: Vec<Cell> = e.cells().collect();
        assert_eq!(cells[0], Cell::new(5, 1));
        assert_eq!(cells.len(), 6);
    }

    #[test]
    fn display_is_readable() {
        let e = Equation::new(
            EquationKind::Row,
            Cell::new(0, 2),
            vec![Cell::new(0, 0), Cell::new(0, 1)],
        );
        assert_eq!(e.to_string(), "row (0,2) = (0,0) ^ (0,1)");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn parity_in_members_asserts() {
        let _ = Equation::new(
            EquationKind::Row,
            Cell::new(0, 0),
            vec![Cell::new(0, 0), Cell::new(0, 1)],
        );
    }
}
