//! Shared 64-bit FNV-1a hasher.
//!
//! Self-contained so fingerprints are stable across Rust releases (unlike
//! `DefaultHasher`, whose algorithm is unspecified) and identical across
//! crates: [`CodeLayout::fingerprint`](crate::layout::CodeLayout::fingerprint)
//! keys the codec's schedule cache with it, and `dcode-analyze` stamps its
//! reports with a program fingerprint computed by the same primitive, so a
//! report can be matched to the exact compiled artifact it analyzed.

/// Incremental 64-bit FNV-1a state.
#[derive(Copy, Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher initialized at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb raw bytes.
    pub fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorb one `u64`, little-endian.
    pub fn word(&mut self, w: u64) {
        self.bytes(&w.to_le_bytes());
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // From the reference FNV test suite: fnv1a_64("") is the offset
        // basis, fnv1a_64("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn word_equals_le_bytes() {
        let mut a = Fnv1a::new();
        a.word(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
