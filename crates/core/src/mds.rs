//! Exhaustive fault-tolerance verification.
//!
//! A RAID-6 code must survive *any* two concurrent disk failures. For the
//! small stripes used in practice (primes up to a few dozen) this is cheap to
//! check outright: run the peeling planner for every single column and every
//! pair of columns. The checker is used in the test suite of every code in
//! the workspace — including the H-Code/HDP reconstructions, where it is the
//! acceptance criterion (see DESIGN.md §5).

use crate::decoder::plan_column_recovery;
use crate::layout::CodeLayout;
use std::fmt;

/// A failure scenario the code could not recover from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MdsViolation {
    /// The failed disks (one or two columns).
    pub failed: Vec<usize>,
    /// How many elements peeling left unresolved.
    pub stuck: usize,
}

impl fmt::Display for MdsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failure of disks {:?} unrecoverable ({} elements stuck)",
            self.failed, self.stuck
        )
    }
}

impl std::error::Error for MdsViolation {}

/// Verify that every single-disk failure is recoverable.
pub fn verify_single_fault_tolerance(layout: &CodeLayout) -> Result<(), MdsViolation> {
    for c in 0..layout.disks() {
        if let Err(e) = plan_column_recovery(layout, &[c]) {
            return Err(MdsViolation {
                failed: vec![c],
                stuck: e.remaining.len(),
            });
        }
    }
    Ok(())
}

/// Verify that every pair of concurrent disk failures is recoverable
/// (RAID-6 / distance-3 property), including pairs involving parity-heavy
/// columns.
pub fn verify_double_fault_tolerance(layout: &CodeLayout) -> Result<(), MdsViolation> {
    for c1 in 0..layout.disks() {
        for c2 in c1 + 1..layout.disks() {
            if let Err(e) = plan_column_recovery(layout, &[c1, c2]) {
                return Err(MdsViolation {
                    failed: vec![c1, c2],
                    stuck: e.remaining.len(),
                });
            }
        }
    }
    Ok(())
}

/// Verify both the fault-tolerance and the storage-optimality halves of the
/// MDS property:
///
/// * any 1 or 2 disk failures are recoverable, and
/// * the code stores the information-theoretic maximum of data for a
///   2-fault-tolerant array: a `data / total` fraction of exactly
///   `(disks − 2) / disks`.
///
/// # Panics
/// Panics if the layout is fault-tolerant but not storage-optimal — a
/// structurally different defect than the recoverability failures the
/// `Err` variant reports (the registry never constructs such a layout).
pub fn verify_mds(layout: &CodeLayout) -> Result<(), MdsViolation> {
    verify_single_fault_tolerance(layout)?;
    verify_double_fault_tolerance(layout)?;
    assert!(
        storage_is_optimal(layout),
        "{} stores {} data cells in a {}x{} stripe — not MDS-optimal",
        layout.name(),
        layout.data_len(),
        layout.rows(),
        layout.disks()
    );
    Ok(())
}

/// Whether the layout achieves the optimal RAID-6 storage rate
/// `(disks − 2) / disks` exactly (integer arithmetic, no rounding).
pub fn storage_is_optimal(layout: &CodeLayout) -> bool {
    let total = layout.grid().len();
    layout.data_len() * layout.disks() == total * (layout.disks() - 2)
}

/// Verify that every combination of `t` concurrent disk failures is
/// recoverable. `t = 2` is [`verify_double_fault_tolerance`]; higher `t`
/// costs C(disks, t) decode attempts.
pub fn verify_t_fault_tolerance(layout: &CodeLayout, t: usize) -> Result<(), MdsViolation> {
    fn combos(
        layout: &CodeLayout,
        chosen: &mut Vec<usize>,
        next: usize,
        remaining: usize,
    ) -> Result<(), MdsViolation> {
        if remaining == 0 {
            return match plan_column_recovery(layout, chosen) {
                Ok(_) => Ok(()),
                Err(e) => Err(MdsViolation {
                    failed: chosen.clone(),
                    stuck: e.remaining.len(),
                }),
            };
        }
        for c in next..=layout.disks() - remaining {
            chosen.push(c);
            combos(layout, chosen, c + 1, remaining - 1)?;
            chosen.pop();
        }
        Ok(())
    }
    combos(layout, &mut Vec::with_capacity(t), 0, t)
}

/// The exact column-failure tolerance of a layout: the largest `t` such
/// that *every* set of `t` failed disks is recoverable. A RAID-6 MDS code
/// measures exactly 2; useful for probing custom codes defined via
/// [`crate::spec::parse_spec`].
///
/// ```
/// use dcode_core::dcode::dcode;
/// use dcode_core::mds::fault_tolerance;
/// assert_eq!(fault_tolerance(&dcode(7).unwrap()), 2);
/// ```
pub fn fault_tolerance(layout: &CodeLayout) -> usize {
    let mut t = 0;
    while t < layout.disks() && verify_t_fault_tolerance(layout, t + 1).is_ok() {
        t += 1;
    }
    t
}

/// Confirm that a *deliberately broken* layout is caught: used by tests to
/// make sure the checker has teeth.
///
/// # Panics
/// Panics if the layout unexpectedly passes verification — for this
/// helper, a *passing* check is the failure being tested for.
pub fn expect_violation(layout: &CodeLayout) -> MdsViolation {
    match verify_double_fault_tolerance(layout) {
        Ok(()) => panic!(
            "layout {} unexpectedly passed MDS verification",
            layout.name()
        ),
        Err(v) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcode::{dcode, xcode, PAPER_PRIMES};
    use crate::equation::EquationKind;
    use crate::grid::Cell;
    use crate::layout::LayoutBuilder;

    #[test]
    fn dcode_is_mds_for_paper_primes() {
        for n in PAPER_PRIMES {
            verify_mds(&dcode(n).unwrap()).unwrap();
        }
    }

    #[test]
    fn dcode_is_mds_for_larger_primes() {
        for n in [17usize, 19, 23] {
            verify_mds(&dcode(n).unwrap()).unwrap();
        }
    }

    #[test]
    fn xcode_is_mds_for_paper_primes() {
        for n in PAPER_PRIMES {
            verify_mds(&xcode(n).unwrap()).unwrap();
        }
    }

    #[test]
    fn raid5_style_layout_fails_double_fault() {
        // Single parity family cannot survive two failures; the checker
        // must say so.
        let mut b = LayoutBuilder::new("raid5", 5, 2, 4);
        for r in 0..2 {
            b.equation(
                EquationKind::Row,
                Cell::new(r, 3),
                vec![Cell::new(r, 0), Cell::new(r, 1), Cell::new(r, 2)],
            );
        }
        let l = b.build().unwrap();
        verify_single_fault_tolerance(&l).unwrap();
        let v = expect_violation(&l);
        assert_eq!(v.failed.len(), 2);
    }

    #[test]
    fn exact_tolerance_is_two_for_raid6_codes() {
        // Exactly 2 — never 3 (MDS distance), never 1.
        for n in [5usize, 7] {
            assert_eq!(fault_tolerance(&dcode(n).unwrap()), 2, "D-Code n={n}");
            assert_eq!(fault_tolerance(&xcode(n).unwrap()), 2, "X-Code n={n}");
        }
    }

    #[test]
    fn raid5_toy_measures_tolerance_one() {
        let mut b = LayoutBuilder::new("raid5", 5, 2, 4);
        for r in 0..2 {
            b.equation(
                EquationKind::Row,
                Cell::new(r, 3),
                vec![Cell::new(r, 0), Cell::new(r, 1), Cell::new(r, 2)],
            );
        }
        assert_eq!(fault_tolerance(&b.build().unwrap()), 1);
    }

    #[test]
    fn storage_optimality_detects_waste() {
        // Mirror-ish layout: 1 data, 2 parities covering it → not optimal.
        let mut b = LayoutBuilder::new("waste", 3, 1, 3);
        b.equation(EquationKind::Row, Cell::new(0, 1), vec![Cell::new(0, 0)]);
        b.equation(
            EquationKind::Diagonal,
            Cell::new(0, 2),
            vec![Cell::new(0, 0)],
        );
        let l = b.build().unwrap();
        // 1 data / 3 total = (3-2)/3 → this one actually IS rate-optimal.
        assert!(storage_is_optimal(&l));
        verify_double_fault_tolerance(&l).unwrap();
    }
}
