#![warn(missing_docs)]
#![warn(clippy::missing_panics_doc)]
//! # dcode-core
//!
//! Core machinery and the paper's contribution for the reproduction of
//! *Fu & Shu, "D-Code: An Efficient RAID-6 Code to Optimize I/O Loads and
//! Read Performance", IEEE IPDPS 2015*.
//!
//! This crate contains:
//!
//! * the generic array-code model — [`grid`], [`equation`], [`layout`] —
//!   that every code in the workspace is expressed in;
//! * the peeling erasure [`decoder`] used for both real decoding (via
//!   `dcode-codec`) and I/O accounting (via `dcode-iosim`);
//! * the exhaustive [`mds`] verifier and the complexity [`metrics`] of
//!   Section III-D;
//! * the [`dcode`] module with three independent, tested-equal constructions
//!   of D-Code (closed-form equations (1)–(2), the procedural 4-step walks,
//!   and Theorem 1's X-Code column reordering), plus X-Code itself;
//! * terminal [`render`]ing of layouts (the paper's Figure 2) and a
//!   textual code [`spec`] format for defining custom codes at runtime.
//!
//! ## Quick example
//!
//! ```
//! use dcode_core::dcode::dcode;
//! use dcode_core::decoder::plan_column_recovery;
//! use dcode_core::mds::verify_mds;
//!
//! let code = dcode(7).unwrap();           // 7-disk D-Code
//! verify_mds(&code).unwrap();             // tolerates any 2 disk failures
//! let plan = plan_column_recovery(&code, &[2, 3]).unwrap();
//! assert_eq!(plan.erased.len(), 14);      // two full columns rebuilt
//! ```

pub mod analysis;
pub mod dcode;
pub mod decoder;
pub mod equation;
pub mod fnv;
pub mod grid;
pub mod layout;
pub mod mds;
pub mod metrics;
pub mod modmath;
pub mod render;
pub mod spec;

pub use analysis::{adjacent_sharing_probability, sharing_stats, SharingStats};
pub use dcode::{dcode as build_dcode, xcode as build_xcode, ConstructError, PAPER_PRIMES};
pub use decoder::{plan_column_recovery, plan_recovery, RecoveryPlan, RecoveryStep};
pub use equation::{Equation, EquationKind};
pub use fnv::Fnv1a;
pub use grid::{Cell, CellKind, Grid};
pub use layout::{CodeLayout, LayoutBuilder, LayoutError};
pub use mds::{fault_tolerance, verify_mds, MdsViolation};
pub use metrics::{measure, CodeMetrics};
pub use spec::{format_spec, parse_spec, SpecError};
