//! [`CodeLayout`] — the complete description of one array code.
//!
//! A layout couples a [`Grid`] with per-cell kinds and the list of parity
//! [`Equation`]s. Everything downstream — the byte codec, the peeling
//! decoder, the MDS checker, the I/O-load simulator — is generic over a
//! layout, so all five codes in the reproduction run through one tested
//! engine (mirroring how the paper implements every code on Jerasure).

use crate::equation::{Equation, EquationKind};
use crate::fnv::Fnv1a;
use crate::grid::{Cell, CellKind, Grid};
use std::collections::BTreeSet;
use std::fmt;

/// Errors detected while assembling a [`CodeLayout`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LayoutError {
    /// An equation references a cell outside the grid.
    OutOfGrid {
        /// The offending cell.
        cell: Cell,
    },
    /// Two equations claim the same parity cell.
    DuplicateParityCell {
        /// The doubly-claimed cell.
        cell: Cell,
    },
    /// A data cell is not covered by any equation, so its loss would be
    /// unrecoverable even under a single failure.
    UnprotectedDataCell {
        /// The uncovered cell.
        cell: Cell,
    },
    /// Parity elements depend on each other in a cycle, so no encode order
    /// exists.
    CyclicParityDependency,
    /// A custom logical order does not list every data cell exactly once.
    InvalidLogicalOrder,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::OutOfGrid { cell } => write!(f, "cell {cell} lies outside the grid"),
            LayoutError::DuplicateParityCell { cell } => {
                write!(f, "cell {cell} is the parity of more than one equation")
            }
            LayoutError::UnprotectedDataCell { cell } => {
                write!(f, "data cell {cell} is not a member of any equation")
            }
            LayoutError::CyclicParityDependency => {
                write!(f, "parity elements form a dependency cycle")
            }
            LayoutError::InvalidLogicalOrder => {
                write!(
                    f,
                    "custom logical order must list every data cell exactly once"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A fully-assembled array code: geometry, cell kinds, equations, and the
/// derived indexes used throughout the workspace.
#[derive(Clone, Debug)]
pub struct CodeLayout {
    name: String,
    prime: usize,
    grid: Grid,
    kinds: Vec<CellKind>,
    equations: Vec<Equation>,
    /// Data cells in logical (row-major) order; defines the mapping from a
    /// workload's "continuous data elements" to grid positions.
    data_cells: Vec<Cell>,
    /// Per-cell logical index (`None` for parity cells).
    logical_of: Vec<Option<usize>>,
    /// Per-cell list of equation indices in which the cell is a *member*.
    member_eqs: Vec<Vec<usize>>,
    /// Equation indices in an order where every parity is computed after all
    /// parities it depends on (topological order).
    encode_order: Vec<usize>,
    /// Structural hash over name, prime, grid, equations, and logical order,
    /// computed once at build time. Two layouts with equal fingerprints are
    /// byte-for-byte the same code for every consumer in the workspace, so
    /// caches (e.g. the codec's `ScheduleCache`) may key on it instead of
    /// deep-comparing equation lists.
    fingerprint: u64,
}

impl CodeLayout {
    /// Human-readable code name, e.g. `"D-Code"` or `"RDP"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The prime parameter `p` (the paper's `n` for D-Code and X-Code).
    pub fn prime(&self) -> usize {
        self.prime
    }

    /// Stripe geometry.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Rows per stripe.
    pub fn rows(&self) -> usize {
        self.grid.rows
    }

    /// Number of disks (columns).
    pub fn disks(&self) -> usize {
        self.grid.cols
    }

    /// Kind of the element at `cell`.
    pub fn kind(&self, cell: Cell) -> CellKind {
        self.kinds[self.grid.index(cell)]
    }

    /// All parity equations.
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// One equation by index.
    pub fn equation(&self, idx: usize) -> &Equation {
        &self.equations[idx]
    }

    /// Data cells in logical order.
    pub fn data_cells(&self) -> &[Cell] {
        &self.data_cells
    }

    /// Number of data elements per stripe.
    pub fn data_len(&self) -> usize {
        self.data_cells.len()
    }

    /// Map a logical data index (`0..data_len`) to its grid position.
    pub fn logical_to_cell(&self, idx: usize) -> Cell {
        self.data_cells[idx]
    }

    /// Map a grid position to its logical data index, if it is a data cell.
    pub fn logical_of(&self, cell: Cell) -> Option<usize> {
        self.logical_of[self.grid.index(cell)]
    }

    /// Equations in which `cell` appears as a member (not as the parity).
    pub fn member_eqs(&self, cell: Cell) -> &[usize] {
        &self.member_eqs[self.grid.index(cell)]
    }

    /// The equation stored at `cell`, if `cell` is a parity element.
    pub fn storing_eq(&self, cell: Cell) -> Option<usize> {
        match self.kind(cell) {
            CellKind::Parity(eq) => Some(eq),
            CellKind::Data => None,
        }
    }

    /// Equation indices in a valid encode order (dependencies first).
    pub fn encode_order(&self) -> &[usize] {
        &self.encode_order
    }

    /// Structural fingerprint of this layout, computed once at build time.
    ///
    /// Hashes the name, prime, grid geometry, every equation (kind, parity,
    /// members in order), and the logical data ordering with FNV-1a. Layouts
    /// that fingerprint equal describe the same code to every consumer, so
    /// this is a sound (and cheap) cache key for compiled artifacts such as
    /// the codec's XOR schedules.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Group equation indices into dependency *levels*: an equation whose
    /// members include the parity of a level-`k` equation lands in level
    /// `k+1` or later, so all equations within one level are mutually
    /// independent and may be evaluated concurrently. Level order is a
    /// valid encode order; this is the grouping the codec's schedule
    /// compiler and parallel encoder build their programs from.
    pub fn dependency_levels(&self) -> Vec<Vec<usize>> {
        let n_eq = self.equations.len();
        let mut level = vec![0usize; n_eq];
        // encode_order is topologically sorted, so one pass suffices.
        for &eq_idx in &self.encode_order {
            let eq = &self.equations[eq_idx];
            let mut lv = 0;
            for &m in &eq.members {
                if let CellKind::Parity(dep) = self.kind(m) {
                    lv = lv.max(level[dep] + 1);
                }
            }
            level[eq_idx] = lv;
        }
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut groups = vec![Vec::new(); max_level + 1];
        for (eq_idx, &lv) in level.iter().enumerate() {
            groups[lv].push(eq_idx);
        }
        groups
    }

    /// Iterate over all parity cells.
    pub fn parity_cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.grid.cells().filter(|&c| self.kind(c).is_parity())
    }

    /// Number of parity elements stored on disk `col`.
    pub fn parity_count_in_col(&self, col: usize) -> usize {
        self.grid
            .column(col)
            .filter(|&c| self.kind(c).is_parity())
            .count()
    }

    /// Number of data elements stored on disk `col`.
    pub fn data_count_in_col(&self, col: usize) -> usize {
        self.grid
            .column(col)
            .filter(|&c| self.kind(c).is_data())
            .count()
    }

    /// The set of parity cells that must be rewritten when `changed` data
    /// cells are modified, following parity-on-parity dependencies to a fixed
    /// point (RDP's diagonal parity covers the row parity, so one data write
    /// can cascade).
    pub fn update_closure(&self, changed: &[Cell]) -> BTreeSet<Cell> {
        let mut dirty_parities: BTreeSet<Cell> = BTreeSet::new();
        let mut frontier: Vec<Cell> = changed.to_vec();
        while let Some(cell) = frontier.pop() {
            for &eq_idx in self.member_eqs(cell) {
                let parity = self.equations[eq_idx].parity;
                if dirty_parities.insert(parity) {
                    frontier.push(parity);
                }
            }
        }
        dirty_parities
    }

    /// Per-kind equation counts, e.g. `[(Horizontal, 7), (Deployment, 7)]`.
    pub fn equation_census(&self) -> Vec<(EquationKind, usize)> {
        let mut census: Vec<(EquationKind, usize)> = Vec::new();
        for eq in &self.equations {
            match census.iter_mut().find(|(k, _)| *k == eq.kind) {
                Some((_, n)) => *n += 1,
                None => census.push((eq.kind, 1)),
            }
        }
        census
    }
}

/// Incrementally assembles a [`CodeLayout`]; [`LayoutBuilder::build`] runs
/// the structural validation.
#[derive(Clone, Debug)]
pub struct LayoutBuilder {
    name: String,
    prime: usize,
    grid: Grid,
    equations: Vec<Equation>,
    logical_order: Option<Vec<Cell>>,
}

impl LayoutBuilder {
    /// Start a layout for a `rows × cols` stripe of the code named `name`
    /// with prime parameter `prime`.
    pub fn new(name: impl Into<String>, prime: usize, rows: usize, cols: usize) -> Self {
        LayoutBuilder {
            name: name.into(),
            prime,
            grid: Grid::new(rows, cols),
            equations: Vec::new(),
            logical_order: None,
        }
    }

    /// Override the logical data ordering (the grid positions of
    /// consecutive logical addresses). Defaults to row-major over the data
    /// cells; HDP's stripe mapping, for example, runs along wrapped
    /// diagonals. The order must list every data cell exactly once.
    pub fn with_logical_order(&mut self, order: Vec<Cell>) -> &mut Self {
        self.logical_order = Some(order);
        self
    }

    /// Add one parity equation. The `parity` cell becomes a parity element.
    pub fn equation(&mut self, kind: EquationKind, parity: Cell, members: Vec<Cell>) -> &mut Self {
        self.equations.push(Equation::new(kind, parity, members));
        self
    }

    /// Validate and freeze the layout.
    pub fn build(self) -> Result<CodeLayout, LayoutError> {
        let grid = self.grid;
        // Bounds.
        for eq in &self.equations {
            for cell in eq.cells() {
                if !grid.contains(cell) {
                    return Err(LayoutError::OutOfGrid { cell });
                }
            }
        }
        // Cell kinds; duplicate parity detection.
        let mut kinds = vec![CellKind::Data; grid.len()];
        for (i, eq) in self.equations.iter().enumerate() {
            let slot = &mut kinds[grid.index(eq.parity)];
            if slot.is_parity() {
                return Err(LayoutError::DuplicateParityCell { cell: eq.parity });
            }
            *slot = CellKind::Parity(i);
        }
        // Member index.
        let mut member_eqs: Vec<Vec<usize>> = vec![Vec::new(); grid.len()];
        for (i, eq) in self.equations.iter().enumerate() {
            for &m in &eq.members {
                member_eqs[grid.index(m)].push(i);
            }
        }
        // Every data cell must be protected.
        for cell in grid.cells() {
            if kinds[grid.index(cell)].is_data() && member_eqs[grid.index(cell)].is_empty() {
                return Err(LayoutError::UnprotectedDataCell { cell });
            }
        }
        // Topological encode order over parity-on-parity dependencies.
        let n_eq = self.equations.len();
        let mut indegree = vec![0usize; n_eq];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_eq];
        for (i, eq) in self.equations.iter().enumerate() {
            for &m in &eq.members {
                if let CellKind::Parity(dep) = kinds[grid.index(m)] {
                    // Equation `i` consumes the output of equation `dep`.
                    dependents[dep].push(i);
                    indegree[i] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n_eq).filter(|&i| indegree[i] == 0).collect();
        let mut encode_order = Vec::with_capacity(n_eq);
        while let Some(i) = queue.pop() {
            encode_order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if encode_order.len() != n_eq {
            return Err(LayoutError::CyclicParityDependency);
        }
        // Logical data ordering: custom if supplied, else row-major over
        // the data cells.
        let mut data_cells = Vec::new();
        let mut logical_of = vec![None; grid.len()];
        match self.logical_order {
            Some(order) => {
                let n_data = grid
                    .cells()
                    .filter(|&c| kinds[grid.index(c)].is_data())
                    .count();
                if order.len() != n_data {
                    return Err(LayoutError::InvalidLogicalOrder);
                }
                for cell in order {
                    if !grid.contains(cell)
                        || !kinds[grid.index(cell)].is_data()
                        || logical_of[grid.index(cell)].is_some()
                    {
                        return Err(LayoutError::InvalidLogicalOrder);
                    }
                    logical_of[grid.index(cell)] = Some(data_cells.len());
                    data_cells.push(cell);
                }
            }
            None => {
                for cell in grid.cells() {
                    if kinds[grid.index(cell)].is_data() {
                        logical_of[grid.index(cell)] = Some(data_cells.len());
                        data_cells.push(cell);
                    }
                }
            }
        }
        // Structural fingerprint: FNV-1a over everything a consumer can
        // observe about the code. Derived indexes (kinds, member_eqs,
        // encode_order) are functions of the hashed inputs, so they add no
        // information and are skipped.
        let mut fp = Fnv1a::new();
        fp.bytes(self.name.as_bytes());
        fp.word(self.prime as u64);
        fp.word(grid.rows as u64);
        fp.word(grid.cols as u64);
        fp.word(self.equations.len() as u64);
        for eq in &self.equations {
            fp.word(eq.kind as u64);
            fp.word(grid.index(eq.parity) as u64);
            fp.word(eq.members.len() as u64);
            for &m in &eq.members {
                fp.word(grid.index(m) as u64);
            }
        }
        fp.word(data_cells.len() as u64);
        for &c in &data_cells {
            fp.word(grid.index(c) as u64);
        }
        Ok(CodeLayout {
            name: self.name,
            prime: self.prime,
            grid,
            kinds,
            equations: self.equations,
            data_cells,
            logical_of,
            member_eqs,
            encode_order,
            fingerprint: fp.finish(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 2×3 code: one row parity per row in the last column.
    fn toy() -> CodeLayout {
        let mut b = LayoutBuilder::new("toy", 3, 2, 3);
        for r in 0..2 {
            b.equation(
                EquationKind::Row,
                Cell::new(r, 2),
                vec![Cell::new(r, 0), Cell::new(r, 1)],
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn kinds_and_logical_order() {
        let l = toy();
        assert!(l.kind(Cell::new(0, 2)).is_parity());
        assert!(l.kind(Cell::new(0, 0)).is_data());
        assert_eq!(l.data_len(), 4);
        assert_eq!(l.logical_to_cell(0), Cell::new(0, 0));
        assert_eq!(l.logical_to_cell(2), Cell::new(1, 0));
        assert_eq!(l.logical_of(Cell::new(1, 1)), Some(3));
        assert_eq!(l.logical_of(Cell::new(0, 2)), None);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // Rebuilding the identical layout yields the identical fingerprint.
        assert_eq!(toy().fingerprint(), toy().fingerprint());
        // Any observable difference — name, prime, geometry, equation shape —
        // changes it.
        let mut renamed = LayoutBuilder::new("toy2", 3, 2, 3);
        let mut reprimed = LayoutBuilder::new("toy", 5, 2, 3);
        for b in [&mut renamed, &mut reprimed] {
            for r in 0..2 {
                b.equation(
                    EquationKind::Row,
                    Cell::new(r, 2),
                    vec![Cell::new(r, 0), Cell::new(r, 1)],
                );
            }
        }
        let fp = toy().fingerprint();
        assert_ne!(fp, renamed.build().unwrap().fingerprint());
        assert_ne!(fp, reprimed.build().unwrap().fingerprint());
    }

    #[test]
    fn member_index() {
        let l = toy();
        assert_eq!(l.member_eqs(Cell::new(0, 0)), &[0]);
        assert_eq!(l.member_eqs(Cell::new(1, 1)), &[1]);
        assert!(l.member_eqs(Cell::new(0, 2)).is_empty());
    }

    #[test]
    fn update_closure_simple() {
        let l = toy();
        let dirty = l.update_closure(&[Cell::new(0, 0)]);
        assert_eq!(dirty.into_iter().collect::<Vec<_>>(), vec![Cell::new(0, 2)]);
    }

    #[test]
    fn update_closure_cascades_through_parity() {
        // Row parity in col 2; a "diagonal" parity at (1,2)... build a chain:
        // q covers data (0,0) and parity (0,2) does not exist here; instead:
        // eq0: (0,2) = (0,0) ^ (0,1);  eq1: (1,2) = (1,0) ^ (0,2)
        let mut b = LayoutBuilder::new("cascade", 3, 2, 3);
        b.equation(
            EquationKind::Row,
            Cell::new(0, 2),
            vec![Cell::new(0, 0), Cell::new(0, 1)],
        );
        b.equation(
            EquationKind::Diagonal,
            Cell::new(1, 2),
            vec![Cell::new(1, 0), Cell::new(1, 1), Cell::new(0, 2)],
        );
        let l = b.build().unwrap();
        let dirty = l.update_closure(&[Cell::new(0, 0)]);
        assert_eq!(
            dirty.into_iter().collect::<Vec<_>>(),
            vec![Cell::new(0, 2), Cell::new(1, 2)]
        );
        // Encode order must compute eq0 before eq1.
        let order = l.encode_order();
        let pos0 = order.iter().position(|&i| i == 0).unwrap();
        let pos1 = order.iter().position(|&i| i == 1).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn duplicate_parity_rejected() {
        let mut b = LayoutBuilder::new("dup", 3, 2, 3);
        b.equation(EquationKind::Row, Cell::new(0, 2), vec![Cell::new(0, 0)]);
        b.equation(EquationKind::Row, Cell::new(0, 2), vec![Cell::new(0, 1)]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::DuplicateParityCell {
                cell: Cell::new(0, 2)
            }
        );
    }

    #[test]
    fn unprotected_data_rejected() {
        let mut b = LayoutBuilder::new("hole", 3, 1, 3);
        b.equation(EquationKind::Row, Cell::new(0, 2), vec![Cell::new(0, 0)]);
        // (0,1) is data but in no equation.
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::UnprotectedDataCell {
                cell: Cell::new(0, 1)
            }
        );
    }

    #[test]
    fn out_of_grid_rejected() {
        let mut b = LayoutBuilder::new("oob", 3, 1, 3);
        b.equation(EquationKind::Row, Cell::new(0, 2), vec![Cell::new(0, 5)]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::OutOfGrid {
                cell: Cell::new(0, 5)
            }
        );
    }

    #[test]
    fn cyclic_dependency_rejected() {
        let mut b = LayoutBuilder::new("cycle", 3, 1, 4);
        // (0,0) and (0,1) are parities of each other; (0,2),(0,3) data.
        b.equation(
            EquationKind::Row,
            Cell::new(0, 0),
            vec![Cell::new(0, 1), Cell::new(0, 2)],
        );
        b.equation(
            EquationKind::Row,
            Cell::new(0, 1),
            vec![Cell::new(0, 0), Cell::new(0, 3)],
        );
        assert_eq!(b.build().unwrap_err(), LayoutError::CyclicParityDependency);
    }

    #[test]
    fn census_counts_kinds() {
        let l = toy();
        assert_eq!(l.equation_census(), vec![(EquationKind::Row, 2)]);
    }

    #[test]
    fn per_column_counts() {
        let l = toy();
        assert_eq!(l.parity_count_in_col(2), 2);
        assert_eq!(l.data_count_in_col(2), 0);
        assert_eq!(l.data_count_in_col(0), 2);
    }
}
