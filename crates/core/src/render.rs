//! Text rendering of layouts — regenerates the paper's Figure 2-style
//! pictures on a terminal.
//!
//! For a chosen equation kind, every data cell is labelled with the index of
//! the equation that covers it (numbers for the first kind, letters for the
//! second, mirroring Figure 2's number/letter flags), and parity cells are
//! labelled with the equation they store.

use crate::equation::EquationKind;
use crate::grid::CellKind;
use crate::layout::CodeLayout;
use std::fmt::Write as _;

/// Label generator: equation index → short printable label.
fn label(idx: usize, letters: bool) -> String {
    if letters {
        // A, B, …, Z, AA, AB, … (Figure 2(b) uses letters).
        let mut s = String::new();
        let mut i = idx;
        loop {
            s.insert(0, (b'A' + (i % 26) as u8) as char);
            if i < 26 {
                break;
            }
            i = i / 26 - 1;
        }
        s
    } else {
        idx.to_string()
    }
}

/// Render the membership picture for one equation kind, Figure-2 style.
///
/// Data cells show the label of the `kind` equation covering them (`.` if
/// none does); parity cells storing a `kind` equation show `[label]`, other
/// parity cells show `[ ]`.
pub fn render_kind(layout: &CodeLayout, kind: EquationKind, letters: bool) -> String {
    // Number the equations of this kind in construction order.
    let eq_ids: Vec<usize> = layout
        .equations()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == kind)
        .map(|(i, _)| i)
        .collect();
    let local = |eq: usize| eq_ids.iter().position(|&i| i == eq);

    let grid = layout.grid();
    let mut cell_label = vec![String::from("."); grid.len()];
    for (&eq_idx, k) in eq_ids.iter().zip(0..) {
        for &m in &layout.equation(eq_idx).members {
            cell_label[grid.index(m)] = label(k, letters);
        }
        let _ = k;
    }
    for cell in grid.cells() {
        if let CellKind::Parity(eq) = layout.kind(cell) {
            cell_label[grid.index(cell)] = match local(eq) {
                Some(k) => format!("[{}]", label(k, letters)),
                None => "[ ]".to_string(),
            };
        }
    }

    let width = cell_label
        .iter()
        .map(std::string::String::len)
        .max()
        .unwrap_or(1)
        + 1;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (p={}) — {} parities",
        layout.name(),
        layout.prime(),
        kind
    );
    for r in 0..grid.rows {
        for c in 0..grid.cols {
            let s = &cell_label[r * grid.cols + c];
            let _ = write!(out, "{s:>width$}");
        }
        out.push('\n');
    }
    out
}

/// Render the data/parity map: `D` for data, the equation-kind initial for
/// parities (`H`, `P`, `R`, `G`, `A` for horizontal, deployment, row,
/// diagonal, anti-diagonal).
pub fn render_kinds_map(layout: &CodeLayout) -> String {
    let grid = layout.grid();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (p={}) — element kinds",
        layout.name(),
        layout.prime()
    );
    for r in 0..grid.rows {
        for c in 0..grid.cols {
            let ch = match layout.kind(crate::grid::Cell::new(r, c)) {
                CellKind::Data => 'D',
                CellKind::Parity(eq) => match layout.equation(eq).kind {
                    EquationKind::Horizontal => 'H',
                    EquationKind::Deployment => 'P',
                    EquationKind::Row => 'R',
                    EquationKind::Diagonal => 'G',
                    EquationKind::AntiDiagonal => 'A',
                },
            };
            let _ = write!(out, " {ch}");
        }
        out.push('\n');
    }
    out
}

/// Render an operation footprint, Figure-1 style: `*` marks requested or
/// written elements, `o` marks extra elements read or written (recovery
/// sources, parity updates), `x` marks lost elements on failed disks, `.`
/// is untouched data and `·` untouched parity.
pub fn render_footprint(
    layout: &CodeLayout,
    stars: &[crate::grid::Cell],
    rounds: &[crate::grid::Cell],
    failed_cols: &[usize],
) -> String {
    let grid = layout.grid();
    let mut out = String::new();
    for r in 0..grid.rows {
        for c in 0..grid.cols {
            let cell = crate::grid::Cell::new(r, c);
            let ch = if stars.contains(&cell) {
                if failed_cols.contains(&c) {
                    'x'
                } else {
                    '*'
                }
            } else if rounds.contains(&cell) {
                'o'
            } else if failed_cols.contains(&c) {
                '!'
            } else if layout.kind(cell).is_parity() {
                '·'
            } else {
                '.'
            };
            let _ = write!(out, " {ch}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcode::dcode;
    use crate::grid::Cell;

    #[test]
    fn labels_count_up() {
        assert_eq!(label(0, false), "0");
        assert_eq!(label(12, false), "12");
        assert_eq!(label(0, true), "A");
        assert_eq!(label(6, true), "G");
        assert_eq!(label(25, true), "Z");
        assert_eq!(label(26, true), "AA");
    }

    #[test]
    fn render_dcode_has_expected_shape() {
        let l = dcode(7).unwrap();
        let pic = render_kind(&l, EquationKind::Horizontal, false);
        // Header + 7 rows.
        assert_eq!(pic.lines().count(), 8);
        // All parities of the horizontal row render as [k].
        let parity_line = pic.lines().nth(6).unwrap(); // row n-2 = 5 → line 6
        assert_eq!(parity_line.matches('[').count(), 7);
        // The deployment parity row renders [ ] under horizontal view.
        let last = pic.lines().nth(7).unwrap();
        assert!(last.contains("[ ]"));
    }

    #[test]
    fn footprint_symbols() {
        let l = dcode(5).unwrap();
        let pic = render_footprint(
            &l,
            &[Cell::new(0, 0), Cell::new(0, 1)],
            &[Cell::new(3, 2)],
            &[1],
        );
        let lines: Vec<&str> = pic.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with(" * x")); // requested; lost on failed disk
        assert!(lines[3].contains('o')); // extra access
        assert!(lines[1].contains('!')); // failed column
        assert!(lines[4].contains('·')); // untouched parity
    }

    #[test]
    fn kinds_map_marks_last_two_rows() {
        let l = dcode(5).unwrap();
        let pic = render_kinds_map(&l);
        let lines: Vec<&str> = pic.lines().collect();
        assert!(lines[1].trim().chars().all(|c| c == 'D' || c == ' '));
        assert!(lines[4].contains('H'));
        assert!(lines[5].contains('P'));
    }
}
