//! Erasure decoding: peeling with a Gaussian-elimination fallback.
//!
//! All RAID-6 array codes in this workspace recover any two lost columns.
//! Most (RDP, X-Code, H-Code, HDP, D-Code) do so by *peeling*: repeatedly
//! find a parity equation with exactly one unknown element and solve it —
//! the "recovery chain" argument in the RDP/X-Code/D-Code papers (the
//! D-Code paper's Figure 3 walks two such chains). EVENODD additionally
//! needs linear *combinations* of equations (its classic `S`-syndrome
//! trick), so when peeling stalls the planner falls back to Gauss-Jordan
//! elimination over GF(2).
//!
//! Either way the planner emits an ordered [`RecoveryPlan`] whose steps are
//! self-contained `target := XOR(sources)` operations; the byte-level codec
//! replays the plan over real buffers, and the I/O simulators use it to
//! count disk accesses.

use crate::grid::Cell;
use crate::layout::CodeLayout;
use std::collections::BTreeSet;
use std::fmt;

/// One reconstruction step: `target := XOR(sources)`.
///
/// `eqs` records which parity equations were combined to derive the step —
/// a single index for a peeling step, several for a Gaussian step — so the
/// I/O accounting can attribute the work to parity families.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryStep {
    /// The cell being reconstructed.
    pub target: Cell,
    /// Indices into [`CodeLayout::equations`] combined to derive this step.
    pub eqs: Vec<usize>,
    /// Cells XORed to produce the target. Every source is either a
    /// never-erased cell or the target of an earlier step in the plan.
    pub sources: Vec<Cell>,
}

/// An ordered sequence of [`RecoveryStep`]s that reconstructs every erased
/// cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryPlan {
    /// The cells that were erased, in ascending order.
    pub erased: Vec<Cell>,
    /// Steps in execution order; each target appears exactly once.
    pub steps: Vec<RecoveryStep>,
}

impl RecoveryPlan {
    /// Total XOR operations to execute the plan (`sources − 1` per step).
    pub fn xor_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.sources.len().saturating_sub(1))
            .sum()
    }

    /// The set of *surviving* cells the plan reads (erased cells recovered
    /// by earlier steps are not re-read from disk). This is the disk-read
    /// footprint of the recovery.
    pub fn surviving_reads(&self) -> BTreeSet<Cell> {
        let erased: BTreeSet<Cell> = self.erased.iter().copied().collect();
        let mut reads = BTreeSet::new();
        for step in &self.steps {
            for &cell in &step.sources {
                if !erased.contains(&cell) {
                    reads.insert(cell);
                }
            }
        }
        reads
    }

    /// Whether every step is a plain peeling step (derived from exactly one
    /// equation). True for all the paper's codes; false for EVENODD.
    pub fn is_pure_peeling(&self) -> bool {
        self.steps.iter().all(|s| s.eqs.len() == 1)
    }

    /// Restrict the plan to the steps actually needed to reconstruct
    /// `wanted` cells: the transitive closure over erased sources, in the
    /// original execution order. Used for *partial* degraded service — a
    /// read that needs only a few lost elements should not pay for a whole
    /// column rebuild.
    pub fn subplan_for(&self, wanted: &BTreeSet<Cell>) -> RecoveryPlan {
        let erased: BTreeSet<Cell> = self.erased.iter().copied().collect();
        debug_assert!(wanted.iter().all(|c| erased.contains(c)), "wanted ⊄ erased");
        let mut needed: BTreeSet<Cell> = wanted.clone();
        // Walk the steps backwards: a step is kept if its target is needed,
        // and then its erased sources become needed too.
        let mut keep = vec![false; self.steps.len()];
        for (i, step) in self.steps.iter().enumerate().rev() {
            if needed.contains(&step.target) {
                keep[i] = true;
                for src in &step.sources {
                    if erased.contains(src) {
                        needed.insert(*src);
                    }
                }
            }
        }
        let steps: Vec<RecoveryStep> = self
            .steps
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(s, _)| s.clone())
            .collect();
        let sub_erased: Vec<Cell> = steps.iter().map(|s| s.target).collect();
        let mut sub_erased_sorted = sub_erased;
        sub_erased_sorted.sort_unstable();
        RecoveryPlan {
            erased: sub_erased_sorted,
            steps,
        }
    }
}

/// Decoding failure: the erasure is outside the code's correction
/// capability (for a RAID-6 MDS code, three or more lost columns).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Unrecoverable {
    /// Cells that could not be reconstructed.
    pub remaining: Vec<Cell>,
}

impl fmt::Display for Unrecoverable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecoverable erasure; {} cells stuck (first: {:?})",
            self.remaining.len(),
            self.remaining.first()
        )
    }
}

impl std::error::Error for Unrecoverable {}

/// Plan the reconstruction of an arbitrary set of erased cells.
///
/// Peels as far as possible; if unknowns remain, runs Gauss-Jordan
/// elimination over the remaining equations. Fails only if the erasure is
/// linearly unrecoverable.
///
/// # Panics
/// Panics if `erased` names cells outside the layout's grid; internal
/// asserts otherwise only guard the peeling bookkeeping's consistency.
pub fn plan_recovery(
    layout: &CodeLayout,
    erased: &BTreeSet<Cell>,
) -> Result<RecoveryPlan, Unrecoverable> {
    let grid = layout.grid();
    let mut unknown = vec![false; grid.len()];
    for &cell in erased {
        unknown[grid.index(cell)] = true;
    }

    // --- Phase 1: peeling -------------------------------------------------
    let n_eq = layout.equations().len();
    let mut counts = vec![0usize; n_eq];
    for (i, eq) in layout.equations().iter().enumerate() {
        counts[i] = eq.cells().filter(|&c| unknown[grid.index(c)]).count();
    }

    let mut ready: Vec<usize> = (0..n_eq).filter(|&i| counts[i] == 1).collect();
    let mut steps: Vec<RecoveryStep> = Vec::with_capacity(erased.len());
    let mut solved = 0usize;

    while let Some(eq_idx) = ready.pop() {
        if counts[eq_idx] != 1 {
            continue; // already solved via another equation
        }
        let eq = layout.equation(eq_idx);
        let target = eq
            .cells()
            .find(|&c| unknown[grid.index(c)])
            .expect("count said one unknown");
        unknown[grid.index(target)] = false;
        solved += 1;
        steps.push(RecoveryStep {
            target,
            eqs: vec![eq_idx],
            sources: eq.cells().filter(|&c| c != target).collect(),
        });

        // The target just became known; decrement the unknown count of every
        // equation involving it.
        let mut touched: Vec<usize> = layout.member_eqs(target).to_vec();
        if let Some(se) = layout.storing_eq(target) {
            touched.push(se);
        }
        for t in touched {
            counts[t] -= 1;
            if counts[t] == 1 {
                ready.push(t);
            }
        }
    }

    if solved == erased.len() {
        return Ok(RecoveryPlan {
            erased: erased.iter().copied().collect(),
            steps,
        });
    }

    // --- Phase 2: Gauss-Jordan over the stalled unknowns ------------------
    let stalled: Vec<Cell> = grid.cells().filter(|&c| unknown[grid.index(c)]).collect();
    let col_of = |cell: Cell| stalled.iter().position(|&s| s == cell);

    // One row per equation that still has unknowns: (unknown bitmask,
    // combined equation set as a bitmask over equation indices).
    let words = stalled.len().div_ceil(64);
    let eq_words = n_eq.div_ceil(64);
    let mut rows: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
    for (i, eq) in layout.equations().iter().enumerate() {
        let mut mask = vec![0u64; words];
        let mut any = false;
        for c in eq.cells() {
            if let Some(j) = col_of(c) {
                mask[j / 64] ^= 1 << (j % 64);
                any = true;
            }
        }
        if any {
            let mut eqmask = vec![0u64; eq_words];
            eqmask[i / 64] |= 1 << (i % 64);
            rows.push((mask, eqmask));
        }
    }

    // Gauss-Jordan to reduced row-echelon form.
    let mut pivot_row_of_col: Vec<Option<usize>> = vec![None; stalled.len()];
    let mut r = 0usize;
    #[allow(clippy::needless_range_loop)] // pivot sweep indexes rows and columns together
    for c in 0..stalled.len() {
        let Some(pivot) = (r..rows.len()).find(|&k| rows[k].0[c / 64] >> (c % 64) & 1 == 1) else {
            continue;
        };
        rows.swap(r, pivot);
        for k in 0..rows.len() {
            if k != r && rows[k].0[c / 64] >> (c % 64) & 1 == 1 {
                let (mask_r, eq_r) = rows[r].clone();
                for (dst, src) in rows[k].0.iter_mut().zip(&mask_r) {
                    *dst ^= src;
                }
                for (dst, src) in rows[k].1.iter_mut().zip(&eq_r) {
                    *dst ^= src;
                }
            }
        }
        pivot_row_of_col[c] = Some(r);
        r += 1;
    }

    // An unknown is uniquely determined iff it has a pivot row containing
    // no other (free) unknowns. With free variables present, some pivot rows
    // keep extra set columns in RREF — those targets are undetermined too.
    let determined = |c: usize| -> bool {
        pivot_row_of_col[c]
            .is_some_and(|row| rows[row].0.iter().map(|w| w.count_ones()).sum::<u32>() == 1)
    };
    if !(0..stalled.len()).all(determined) {
        let remaining: Vec<Cell> = stalled
            .iter()
            .enumerate()
            .filter(|&(c, _)| !determined(c))
            .map(|(_, &cell)| cell)
            .collect();
        return Err(Unrecoverable { remaining });
    }

    // Extract one step per solved unknown.
    for (c, &target) in stalled.iter().enumerate() {
        let row = pivot_row_of_col[c].expect("all unknowns determined");
        let (_, eqmask) = &rows[row];
        let eqs: Vec<usize> = (0..n_eq)
            .filter(|&i| eqmask[i / 64] >> (i % 64) & 1 == 1)
            .collect();
        // Sources = symmetric difference of the combined equations' cells,
        // minus the target. All survivors or peel-recovered cells.
        let mut parity_map: std::collections::BTreeMap<Cell, bool> =
            std::collections::BTreeMap::new();
        for &ei in &eqs {
            for cell in layout.equation(ei).cells() {
                *parity_map.entry(cell).or_insert(false) ^= true;
            }
        }
        let sources: Vec<Cell> = parity_map
            .into_iter()
            .filter(|&(cell, odd)| odd && cell != target)
            .map(|(cell, _)| cell)
            .collect();
        debug_assert!(
            sources.iter().all(|s| !stalled.contains(s)),
            "Gaussian step for {target} references an unsolved unknown"
        );
        steps.push(RecoveryStep {
            target,
            eqs,
            sources,
        });
    }

    Ok(RecoveryPlan {
        erased: erased.iter().copied().collect(),
        steps,
    })
}

/// Plan the reconstruction of whole failed disks.
///
/// # Panics
/// Panics if any entry of `failed_cols` is not a valid disk index.
pub fn plan_column_recovery(
    layout: &CodeLayout,
    failed_cols: &[usize],
) -> Result<RecoveryPlan, Unrecoverable> {
    let mut erased = BTreeSet::new();
    for &col in failed_cols {
        assert!(col < layout.disks(), "disk {col} out of range");
        erased.extend(layout.grid().column(col));
    }
    plan_recovery(layout, &erased)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equation::EquationKind;
    use crate::layout::LayoutBuilder;

    /// 2×3 toy with row parity in the last column — single-failure capable.
    fn toy() -> CodeLayout {
        let mut b = LayoutBuilder::new("toy", 3, 2, 3);
        for r in 0..2 {
            b.equation(
                EquationKind::Row,
                Cell::new(r, 2),
                vec![Cell::new(r, 0), Cell::new(r, 1)],
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn recovers_single_data_column() {
        let l = toy();
        let plan = plan_column_recovery(&l, &[0]).unwrap();
        assert_eq!(plan.steps.len(), 2);
        let targets: BTreeSet<Cell> = plan.steps.iter().map(|s| s.target).collect();
        assert_eq!(targets, BTreeSet::from([Cell::new(0, 0), Cell::new(1, 0)]));
        assert!(plan.is_pure_peeling());
    }

    #[test]
    fn recovers_parity_column() {
        let l = toy();
        let plan = plan_column_recovery(&l, &[2]).unwrap();
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn double_failure_fails_for_raid5_toy() {
        // The toy has only one parity family — two lost columns must stall
        // even with the Gaussian fallback (the system is genuinely
        // underdetermined).
        let l = toy();
        let err = plan_column_recovery(&l, &[0, 1]).unwrap_err();
        assert!(!err.remaining.is_empty());
    }

    #[test]
    fn sources_exclude_target() {
        let l = toy();
        let plan = plan_column_recovery(&l, &[0]).unwrap();
        for step in &plan.steps {
            assert!(!step.sources.contains(&step.target));
            assert_eq!(step.sources.len(), 2);
        }
    }

    #[test]
    fn surviving_reads_skip_recovered_cells() {
        let l = toy();
        let plan = plan_column_recovery(&l, &[0]).unwrap();
        let reads = plan.surviving_reads();
        // Reads touch only columns 1 and 2.
        assert!(reads.iter().all(|c| c.col != 0));
        assert_eq!(reads.len(), 4);
    }

    #[test]
    fn xor_count_matches_arity() {
        let l = toy();
        let plan = plan_column_recovery(&l, &[0]).unwrap();
        // Each equation has arity 3 → 1 XOR per recovered element.
        assert_eq!(plan.xor_count(), 2);
    }

    #[test]
    fn empty_erasure_trivial_plan() {
        let l = toy();
        let plan = plan_recovery(&l, &BTreeSet::new()).unwrap();
        assert!(plan.steps.is_empty());
    }

    /// A layout that *requires* the Gaussian fallback: with data cells
    /// d0, d1, d2 and parities p0 = d0⊕d1, p1 = d1⊕d2, p2 = d0⊕d1⊕d2,
    /// erasing all three data cells leaves every equation with ≥ 2 unknowns
    /// (peeling stalls), but the system has full rank over GF(2).
    #[test]
    fn gaussian_fallback_solves_combined_equations() {
        let d0 = Cell::new(0, 0);
        let d1 = Cell::new(0, 1);
        let d2 = Cell::new(0, 2);
        let mut b = LayoutBuilder::new("gauss", 5, 1, 6);
        b.equation(EquationKind::Row, Cell::new(0, 3), vec![d0, d1]);
        b.equation(EquationKind::Row, Cell::new(0, 4), vec![d1, d2]);
        b.equation(EquationKind::Diagonal, Cell::new(0, 5), vec![d0, d1, d2]);
        let l = b.build().unwrap();

        let plan = plan_recovery(&l, &BTreeSet::from([d0, d1, d2])).unwrap();
        assert_eq!(plan.steps.len(), 3);
        assert!(!plan.is_pure_peeling());
        // d2 = p0 ⊕ p2 (combining equations 0 and 2 cancels d0 and d1).
        let step_d2 = plan.steps.iter().find(|s| s.target == d2).unwrap();
        let srcs: BTreeSet<Cell> = step_d2.sources.iter().copied().collect();
        assert_eq!(srcs, BTreeSet::from([Cell::new(0, 3), Cell::new(0, 5)]));
        // Every source of every step is a surviving cell.
        for step in &plan.steps {
            for s in &step.sources {
                assert!(s.col >= 3, "source {s} should be a surviving parity");
            }
        }
    }

    #[test]
    fn subplan_recovers_only_whats_needed() {
        use crate::dcode::dcode;
        let layout = dcode(7).unwrap();
        let full = plan_column_recovery(&layout, &[2, 3]).unwrap();
        assert_eq!(full.steps.len(), 14);

        // Wanting a single early-recoverable element needs a short prefix.
        let first_target = full.steps[0].target;
        let sub = full.subplan_for(&BTreeSet::from([first_target]));
        assert_eq!(sub.steps.len(), 1);
        assert_eq!(sub.steps[0].target, first_target);

        // Wanting the last-recovered element pulls in its whole chain but
        // not the other chain.
        let last_target = full.steps.last().unwrap().target;
        let sub = full.subplan_for(&BTreeSet::from([last_target]));
        assert!(sub.steps.len() < full.steps.len());
        assert_eq!(sub.steps.last().unwrap().target, last_target);
        // Every erased source of every kept step is recovered earlier in
        // the subplan (executability).
        let mut known: BTreeSet<Cell> = BTreeSet::new();
        let erased_full: BTreeSet<Cell> = full.erased.iter().copied().collect();
        for step in &sub.steps {
            for src in &step.sources {
                if erased_full.contains(src) {
                    assert!(known.contains(src), "step uses unrecovered {src}");
                }
            }
            known.insert(step.target);
        }
    }

    /// Rank-deficient stall: duplicate constraints cannot determine two
    /// unknowns, and the fallback must report them rather than panic.
    #[test]
    fn gaussian_fallback_reports_underdetermined_systems() {
        let d0 = Cell::new(0, 0);
        let d1 = Cell::new(0, 1);
        let mut b = LayoutBuilder::new("rank1", 5, 1, 4);
        b.equation(EquationKind::Row, Cell::new(0, 2), vec![d0, d1]);
        b.equation(EquationKind::Diagonal, Cell::new(0, 3), vec![d0, d1]);
        let l = b.build().unwrap();
        let err = plan_recovery(&l, &BTreeSet::from([d0, d1])).unwrap_err();
        assert_eq!(err.remaining.len(), 2);
    }
}
