//! Parity-sharing analysis — the paper's central design argument, made
//! measurable.
//!
//! D-Code's whole case rests on "increasing the possibility of continuous
//! data elements sharing the common parities" (Section II-C). This module
//! quantifies exactly that: for a run of `L` logically continuous data
//! elements, how many *distinct* parity elements cover the run, per parity
//! family and in total. Fewer distinct parities ⇒ cheaper partial-stripe
//! writes and degraded reads. The `sharing_analysis` binary tabulates it
//! for every code.

use crate::grid::Cell;
use crate::layout::CodeLayout;
use std::collections::BTreeSet;

/// Sharing statistics for one run length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharingStats {
    /// Run length in elements.
    pub run_len: usize,
    /// Mean distinct parity elements covering a run (direct coverage only,
    /// no cascade), averaged over every start position.
    pub avg_parities: f64,
    /// Worst case over start positions.
    pub max_parities: usize,
    /// Mean distinct parities *including* cascaded parity-on-parity updates
    /// (what a write actually touches).
    pub avg_parities_with_cascade: f64,
}

/// Distinct parities directly covering the run starting at `start`
/// (wrapping within the stripe).
fn direct_parities(layout: &CodeLayout, start: usize, len: usize) -> BTreeSet<Cell> {
    let data_len = layout.data_len();
    let mut parities = BTreeSet::new();
    for k in 0..len {
        let cell = layout.logical_to_cell((start + k) % data_len);
        for &eq in layout.member_eqs(cell) {
            parities.insert(layout.equation(eq).parity);
        }
    }
    parities
}

/// Compute sharing statistics for a run length over all start positions.
///
/// # Panics
/// Panics unless `1 <= run_len <= layout.data_len()`.
pub fn sharing_stats(layout: &CodeLayout, run_len: usize) -> SharingStats {
    assert!(run_len >= 1 && run_len <= layout.data_len());
    let data_len = layout.data_len();
    let mut total_direct = 0usize;
    let mut max_direct = 0usize;
    let mut total_cascade = 0usize;
    for start in 0..data_len {
        let direct = direct_parities(layout, start, run_len).len();
        total_direct += direct;
        max_direct = max_direct.max(direct);

        let cells: Vec<Cell> = (0..run_len)
            .map(|k| layout.logical_to_cell((start + k) % data_len))
            .collect();
        total_cascade += layout.update_closure(&cells).len();
    }
    SharingStats {
        run_len,
        avg_parities: total_direct as f64 / data_len as f64,
        max_parities: max_direct,
        avg_parities_with_cascade: total_cascade as f64 / data_len as f64,
    }
}

/// The probability that two *adjacent* logical elements share at least one
/// parity — the paper's "possibility of continuous data elements sharing
/// the common parities" for the minimal run.
pub fn adjacent_sharing_probability(layout: &CodeLayout) -> f64 {
    let data_len = layout.data_len();
    let sharing = (0..data_len)
        .filter(|&i| {
            let a = direct_parities(layout, i, 1);
            let b = direct_parities(layout, (i + 1) % data_len, 1);
            a.intersection(&b).next().is_some()
        })
        .count();
    sharing as f64 / data_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcode::{dcode, xcode};

    #[test]
    fn dcode_adjacent_elements_usually_share_a_horizontal_parity() {
        // In each horizontal group of n−2 elements, n−3 adjacent pairs
        // share; only group boundaries don't: probability (n−3)/(n−2).
        for n in [5usize, 7, 11, 13] {
            let p = adjacent_sharing_probability(&dcode(n).unwrap());
            let expect = (n as f64 - 3.0) / (n as f64 - 2.0);
            assert!((p - expect).abs() < 1e-9, "n={n}: {p} vs {expect}");
        }
    }

    #[test]
    fn xcode_adjacent_elements_rarely_share() {
        // Same-row adjacent elements never share (different diagonals and
        // anti-diagonals); only the n−3 row-wrap pairs (j,n−1)→(j+1,0) do —
        // both lie on diagonal ⟨−j−3⟩ₙ. Probability: (n−3)/(n(n−2)).
        for n in [5usize, 7, 11] {
            let p = adjacent_sharing_probability(&xcode(n).unwrap());
            let expect = (n as f64 - 3.0) / (n as f64 * (n as f64 - 2.0));
            assert!((p - expect).abs() < 1e-9, "n={n}: {p} vs {expect}");
            // …which is far below D-Code's (n−3)/(n−2).
            let d = adjacent_sharing_probability(&dcode(n).unwrap());
            assert!(d > 3.0 * p, "n={n}: D-Code {d} vs X-Code {p}");
        }
    }

    #[test]
    fn dcode_runs_touch_fewer_parities_than_xcode() {
        let n = 11;
        let d = dcode(n).unwrap();
        let x = xcode(n).unwrap();
        for len in [2usize, 4, 8] {
            let sd = sharing_stats(&d, len);
            let sx = sharing_stats(&x, len);
            assert!(
                sd.avg_parities < sx.avg_parities,
                "len={len}: D-Code {} vs X-Code {}",
                sd.avg_parities,
                sx.avg_parities
            );
            // X-Code: nearly every element brings 2 fresh parities (the
            // rare row-wrap share shaves off a hair).
            assert!(sx.avg_parities > 2.0 * len as f64 - 1.0);
        }
    }

    #[test]
    fn single_element_touches_exactly_its_equations() {
        let d = dcode(7).unwrap();
        let s = sharing_stats(&d, 1);
        assert!((s.avg_parities - 2.0).abs() < 1e-9);
        assert_eq!(s.max_parities, 2);
        assert!((s.avg_parities_with_cascade - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cascade_exceeds_direct_for_rdp_style_codes() {
        // Build a tiny RDP here to avoid a dev-dependency cycle: the
        // cascade count must be ≥ the direct count whenever parities feed
        // other parities.
        let d = dcode(7).unwrap();
        for len in [1usize, 3, 6] {
            let s = sharing_stats(&d, len);
            assert!(s.avg_parities_with_cascade >= s.avg_parities - 1e-9);
        }
    }
}
