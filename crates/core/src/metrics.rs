//! Computational-complexity metrics (Section III-D of the paper).
//!
//! The paper claims D-Code achieves the *optimal* encoding, decoding, and
//! update complexity for RAID-6 MDS codes. These functions measure each
//! quantity directly from a [`CodeLayout`], so the claims become assertions
//! rather than prose, and the same measurements feed the `features_table`
//! reproduction binary.

use crate::decoder::plan_column_recovery;
use crate::layout::CodeLayout;

/// All per-code complexity measurements in one record.
#[derive(Clone, Debug, PartialEq)]
pub struct CodeMetrics {
    /// Code name.
    pub name: String,
    /// Prime parameter.
    pub prime: usize,
    /// Number of disks.
    pub disks: usize,
    /// Data elements per stripe.
    pub data_elements: usize,
    /// Parity elements per stripe.
    pub parity_elements: usize,
    /// `data / total` storage rate.
    pub storage_rate: f64,
    /// Whether the rate equals the MDS optimum `(disks−2)/disks` exactly.
    pub storage_optimal: bool,
    /// XOR operations per data element for a full-stripe encode.
    pub encode_xors_per_data_element: f64,
    /// Average XORs per reconstructed element over all double-column
    /// failures.
    pub decode_xors_per_lost_element: f64,
    /// Average number of parity elements rewritten when one data element is
    /// updated.
    pub avg_update_complexity: f64,
    /// Worst-case number of parity elements rewritten for a single-element
    /// update.
    pub max_update_complexity: usize,
}

/// XOR count for a full-stripe encode: `members − 1` per equation.
pub fn encode_xor_total(layout: &CodeLayout) -> usize {
    layout
        .equations()
        .iter()
        .map(super::equation::Equation::xor_count)
        .sum()
}

/// XORs per data element for a full-stripe encode. The RAID-6 optimum is
/// `2 − 2/(n−2)` for an `n`-disk vertical code (RDP paper), which D-Code
/// attains: `2n(n−3) / n(n−2)`.
pub fn encode_xors_per_data_element(layout: &CodeLayout) -> f64 {
    encode_xor_total(layout) as f64 / layout.data_len() as f64
}

/// Average XORs per lost element, over every double-column failure.
/// The optimum for an `n`-disk RAID-6 vertical code is `n − 3` per element
/// (H-Code paper), attained by X-Code and D-Code.
///
/// # Panics
/// Panics if some 2-column erasure is unrecoverable — only measure
/// layouts that pass MDS verification.
pub fn decode_xors_per_lost_element(layout: &CodeLayout) -> f64 {
    let disks = layout.disks();
    let mut total_xors = 0usize;
    let mut total_lost = 0usize;
    for c1 in 0..disks {
        for c2 in c1 + 1..disks {
            let plan = plan_column_recovery(layout, &[c1, c2])
                .expect("metrics assume a verified-MDS layout");
            total_xors += plan.xor_count();
            total_lost += plan.erased.len();
        }
    }
    total_xors as f64 / total_lost as f64
}

/// `(average, max)` number of parity writes caused by a one-element update.
/// The RAID-6 optimum is exactly 2 (X-Code paper); RDP exceeds it because
/// its diagonal parity covers the row parity.
pub fn update_complexity(layout: &CodeLayout) -> (f64, usize) {
    let mut total = 0usize;
    let mut max = 0usize;
    for &cell in layout.data_cells() {
        let k = layout.update_closure(&[cell]).len();
        total += k;
        max = max.max(k);
    }
    (total as f64 / layout.data_len() as f64, max)
}

/// Gather every metric for one layout.
pub fn measure(layout: &CodeLayout) -> CodeMetrics {
    let total = layout.grid().len();
    let data = layout.data_len();
    let (avg_update, max_update) = update_complexity(layout);
    CodeMetrics {
        name: layout.name().to_string(),
        prime: layout.prime(),
        disks: layout.disks(),
        data_elements: data,
        parity_elements: total - data,
        storage_rate: data as f64 / total as f64,
        storage_optimal: crate::mds::storage_is_optimal(layout),
        encode_xors_per_data_element: encode_xors_per_data_element(layout),
        decode_xors_per_lost_element: decode_xors_per_lost_element(layout),
        avg_update_complexity: avg_update,
        max_update_complexity: max_update,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcode::{dcode, xcode, PAPER_PRIMES};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn dcode_encode_complexity_matches_closed_form() {
        // Section III-D: 2n(n−3) XORs total, i.e. 2 − 2/(n−2) per element.
        for n in PAPER_PRIMES {
            let l = dcode(n).unwrap();
            assert_eq!(encode_xor_total(&l), 2 * n * (n - 3));
            assert!(close(
                encode_xors_per_data_element(&l),
                2.0 - 2.0 / (n as f64 - 2.0)
            ));
        }
    }

    #[test]
    fn dcode_decode_complexity_is_optimal() {
        // Section III-D: n − 3 XORs per failed element.
        for n in PAPER_PRIMES {
            let l = dcode(n).unwrap();
            assert!(close(decode_xors_per_lost_element(&l), n as f64 - 3.0));
        }
    }

    #[test]
    fn dcode_update_complexity_is_exactly_two() {
        for n in PAPER_PRIMES {
            let (avg, max) = update_complexity(&dcode(n).unwrap());
            assert!(close(avg, 2.0));
            assert_eq!(max, 2);
        }
    }

    #[test]
    fn xcode_matches_dcode_on_all_complexities() {
        // Theorem 1 implies identical complexity profiles.
        for n in PAPER_PRIMES {
            let d = measure(&dcode(n).unwrap());
            let x = measure(&xcode(n).unwrap());
            assert!(close(
                d.encode_xors_per_data_element,
                x.encode_xors_per_data_element
            ));
            assert!(close(
                d.decode_xors_per_lost_element,
                x.decode_xors_per_lost_element
            ));
            assert!(close(d.avg_update_complexity, x.avg_update_complexity));
        }
    }

    #[test]
    fn storage_rate_reported() {
        let m = measure(&dcode(7).unwrap());
        assert_eq!(m.data_elements, 35);
        assert_eq!(m.parity_elements, 14);
        assert!(m.storage_optimal);
        assert!(close(m.storage_rate, 5.0 / 7.0));
    }
}
