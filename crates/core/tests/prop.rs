//! Property-based tests for the core data structures: constructions,
//! layouts, and the decoder, under randomized primes, erasures, and
//! orderings.

use dcode_core::dcode::{
    canonical_equations, dcode, dcode_procedural, dcode_via_xcode_reordering, deployment_walk,
    horizontal_walk, xcode,
};
use dcode_core::decoder::plan_recovery;
use dcode_core::grid::Cell;
use dcode_core::modmath::{inv_mod_prime, is_prime, md};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_paper_prime() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![5usize, 7, 11, 13, 17])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `md` behaves like mathematical mod for any inputs.
    #[test]
    fn md_in_range_and_congruent(a in -10_000i64..10_000, m in 1usize..500) {
        let r = md(a, m);
        prop_assert!(r < m);
        // r ≡ a (mod m)
        prop_assert_eq!((a - r as i64).rem_euclid(m as i64), 0);
    }

    /// Modular inverse really inverts for arbitrary primes in range.
    #[test]
    fn inverse_inverts(p in prop::sample::select(vec![5usize, 7, 11, 13, 17, 19, 23]),
                       a in 1usize..1000) {
        prop_assume!(a % p != 0);
        let inv = inv_mod_prime(a, p);
        prop_assert_eq!((a % p) * inv % p, 1);
    }

    /// is_prime matches a naive sieve.
    #[test]
    fn primality_matches_naive(n in 0usize..2000) {
        let naive = n >= 2 && (2..n).all(|d| n % d != 0);
        prop_assert_eq!(is_prime(n), naive);
    }

    /// Both walks are permutations of the data cells at every prime.
    #[test]
    fn walks_are_permutations(n in arb_paper_prime()) {
        for walk in [horizontal_walk(n), deployment_walk(n)] {
            let set: BTreeSet<Cell> = walk.iter().copied().collect();
            prop_assert_eq!(set.len(), n * (n - 2));
            prop_assert!(set.iter().all(|c| c.row < n - 2 && c.col < n));
        }
    }

    /// The three constructions agree at every prime (Theorem 1 + the
    /// procedural description), not just the paper's examples.
    #[test]
    fn constructions_agree(n in arb_paper_prime()) {
        let a = canonical_equations(&dcode(n).unwrap());
        prop_assert_eq!(&a, &canonical_equations(&dcode_procedural(n).unwrap()));
        prop_assert_eq!(&a, &canonical_equations(&dcode_via_xcode_reordering(n).unwrap()));
    }

    /// Any subset of cells confined to at most two columns is recoverable,
    /// and the plan's targets are exactly the erased cells.
    #[test]
    fn partial_two_column_erasures_recover(
        n in arb_paper_prime(),
        c1 in 0usize..17,
        c2 in 0usize..17,
        mask in any::<u64>(),
    ) {
        let layout = dcode(n).unwrap();
        let (c1, c2) = (c1 % n, c2 % n);
        let cells: Vec<Cell> = layout
            .grid()
            .cells()
            .filter(|c| c.col == c1 || c.col == c2)
            .collect();
        let erased: BTreeSet<Cell> = cells
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, &c)| c)
            .collect();
        let plan = plan_recovery(&layout, &erased).unwrap();
        let targets: BTreeSet<Cell> = plan.steps.iter().map(|s| s.target).collect();
        prop_assert_eq!(targets, erased);
    }

    /// Every D-Code recovery step costs exactly n−3 XORs — the optimal
    /// decode complexity — regardless of which columns fail.
    #[test]
    fn per_step_xor_cost_is_optimal(n in arb_paper_prime(), c1 in 0usize..17, c2 in 0usize..17) {
        let layout = dcode(n).unwrap();
        let (c1, c2) = (c1 % n, c2 % n);
        prop_assume!(c1 != c2);
        let erased: BTreeSet<Cell> = layout
            .grid()
            .cells()
            .filter(|c| c.col == c1 || c.col == c2)
            .collect();
        let plan = plan_recovery(&layout, &erased).unwrap();
        prop_assert!(plan.is_pure_peeling());
        for step in &plan.steps {
            prop_assert_eq!(step.sources.len(), n - 2);
        }
    }

    /// X-Code and D-Code recovery plans have identical step counts and XOR
    /// totals for the same failed columns (Theorem 1 at the decoder level).
    #[test]
    fn theorem1_extends_to_recovery_costs(n in arb_paper_prime(), c1 in 0usize..17, c2 in 0usize..17) {
        let (c1, c2) = (c1 % n, c2 % n);
        prop_assume!(c1 != c2);
        let erase = |layout: &dcode_core::layout::CodeLayout| {
            let erased: BTreeSet<Cell> = layout
                .grid()
                .cells()
                .filter(|c| c.col == c1 || c.col == c2)
                .collect();
            plan_recovery(layout, &erased).unwrap()
        };
        let d = erase(&dcode(n).unwrap());
        let x = erase(&xcode(n).unwrap());
        prop_assert_eq!(d.steps.len(), x.steps.len());
        prop_assert_eq!(d.xor_count(), x.xor_count());
    }
}
