//! Trace-driven workloads.
//!
//! Beyond the paper's synthetic `<S, L, T>` tuples, real storage studies
//! replay block traces. This module parses a simple, SPC-1-inspired text
//! format — one access per line, `offset_elements,length_elements,R|W`
//! (`#` comments allowed) — and converts traces into the simulator's [`Op`]
//! stream. A Zipf-skewed synthetic trace generator is included for studies
//! where a real trace is unavailable: hot-spot skew is the property that
//! distinguishes trace replay from the paper's uniform tuples.

use crate::workload::{Op, OpKind};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Trace parsing errors, with 1-based line numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceParseError {
    /// 1-based line of the offending record.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a trace text into ops (each record runs once: `T = 1`).
pub fn parse_trace(text: &str) -> Result<Vec<Op>, TraceParseError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let fields: Vec<&str> = stripped.split(',').map(str::trim).collect();
        let [off, len, kind] = fields.as_slice() else {
            return Err(TraceParseError {
                line,
                reason: format!("expected 'offset,length,R|W', got '{stripped}'"),
            });
        };
        let start: usize = off.parse().map_err(|_| TraceParseError {
            line,
            reason: format!("bad offset '{off}'"),
        })?;
        let len: usize = len.parse().map_err(|_| TraceParseError {
            line,
            reason: format!("bad length '{len}'"),
        })?;
        if len == 0 {
            return Err(TraceParseError {
                line,
                reason: "zero-length access".into(),
            });
        }
        let kind = match *kind {
            "R" | "r" => OpKind::Read,
            "W" | "w" => OpKind::Write,
            other => {
                return Err(TraceParseError {
                    line,
                    reason: format!("bad kind '{other}' (want R or W)"),
                })
            }
        };
        ops.push(Op {
            kind,
            start,
            len,
            times: 1,
        });
    }
    Ok(ops)
}

/// Render ops back to the trace text format (inverse of [`parse_trace`]
/// for `T = 1` ops; repeated ops are expanded).
pub fn format_trace(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        for _ in 0..op.times {
            out.push_str(&format!(
                "{},{},{}\n",
                op.start,
                op.len,
                if op.kind == OpKind::Read { 'R' } else { 'W' }
            ));
        }
    }
    out
}

/// Parameters for the synthetic Zipf trace generator.
#[derive(Clone, Copy, Debug)]
pub struct ZipfTraceParams {
    /// Number of records.
    pub n_ops: usize,
    /// Fraction of reads (0.0–1.0).
    pub read_fraction: f64,
    /// Zipf exponent over hot spots (0 = uniform).
    pub skew: f64,
    /// Number of distinct hot spots the offsets cluster around.
    pub hot_spots: usize,
    /// Inclusive access-length range in elements.
    pub len_range: (usize, usize),
}

impl Default for ZipfTraceParams {
    fn default() -> Self {
        ZipfTraceParams {
            n_ops: 2000,
            read_fraction: 0.7,
            skew: 1.2,
            hot_spots: 16,
            len_range: (1, 20),
        }
    }
}

/// Generate a Zipf-skewed synthetic trace over `data_len` logical elements.
pub fn zipf_trace(data_len: usize, params: ZipfTraceParams, seed: u64) -> Vec<Op> {
    assert!(data_len > 0 && params.hot_spots > 0);
    assert!(params.len_range.0 >= 1 && params.len_range.0 <= params.len_range.1);
    let mut rng = StdRng::seed_from_u64(seed);

    // Precompute the Zipf CDF over hot spots.
    let weights: Vec<f64> = (0..params.hot_spots)
        .map(|i| 1.0 / ((i + 1) as f64).powf(params.skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    // Hot-spot base offsets spread deterministically over the address space.
    let bases: Vec<usize> = (0..params.hot_spots)
        .map(|i| i * data_len / params.hot_spots)
        .collect();

    let unit = |rng: &mut StdRng| rng.next_u64() as f64 / u64::MAX as f64;
    (0..params.n_ops)
        .map(|_| {
            let u = unit(&mut rng);
            let spot = cdf
                .iter()
                .position(|&c| u <= c)
                .unwrap_or(params.hot_spots - 1);
            // Small jitter around the hot spot keeps accesses clustered.
            let jitter_span = (data_len / params.hot_spots).max(1);
            let jitter = (rng.next_u64() % jitter_span as u64) as usize;
            let start = (bases[spot] + jitter) % data_len;
            let len_span = (params.len_range.1 - params.len_range.0 + 1) as u64;
            let len = params.len_range.0 + (rng.next_u64() % len_span) as usize;
            let kind = if unit(&mut rng) < params.read_fraction {
                OpKind::Read
            } else {
                OpKind::Write
            };
            Op {
                kind,
                start,
                len,
                times: 1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = "# comment line\n0,4,R\n12, 3 ,W # trailing comment\n\n7,1,r\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![
                Op {
                    kind: OpKind::Read,
                    start: 0,
                    len: 4,
                    times: 1
                },
                Op {
                    kind: OpKind::Write,
                    start: 12,
                    len: 3,
                    times: 1
                },
                Op {
                    kind: OpKind::Read,
                    start: 7,
                    len: 1,
                    times: 1
                },
            ]
        );
        let reparsed = parse_trace(&format_trace(&ops)).unwrap();
        assert_eq!(reparsed, ops);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(parse_trace("0,4").unwrap_err().line, 1);
        assert_eq!(parse_trace("0,4,R\nx,4,R").unwrap_err().line, 2);
        assert_eq!(parse_trace("0,0,R").unwrap_err().line, 1);
        assert_eq!(parse_trace("0,4,Q").unwrap_err().line, 1);
    }

    #[test]
    fn zipf_trace_is_deterministic_and_in_range() {
        let a = zipf_trace(100, ZipfTraceParams::default(), 5);
        let b = zipf_trace(100, ZipfTraceParams::default(), 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        assert!(a.iter().all(|o| o.start < 100 && (1..=20).contains(&o.len)));
    }

    #[test]
    fn zipf_skew_concentrates_accesses() {
        let skewed = zipf_trace(
            1000,
            ZipfTraceParams {
                skew: 3.0,
                ..Default::default()
            },
            7,
        );
        // With strong skew, a large share of ops start near hot spot 0.
        let near_head = skewed.iter().filter(|o| o.start < 1000 / 16).count();
        assert!(
            near_head > skewed.len() / 2,
            "{near_head} of {} ops near the hottest spot",
            skewed.len()
        );
    }

    #[test]
    fn trace_feeds_the_simulator() {
        use crate::sim::run_workload;
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let ops = zipf_trace(layout.data_len(), ZipfTraceParams::default(), 11);
        let res = run_workload(&layout, &ops);
        assert!(res.cost() > 0);
        assert!(res.lf() >= 1.0);
    }
}
