#![warn(missing_docs)]
//! # dcode-iosim
//!
//! The I/O-load simulation of the D-Code paper's Section IV: generate
//! `<S, L, T>` workloads ([`workload`]), account element accesses per disk
//! under normal reads, degraded reads, and read-modify-write partial-stripe
//! writes ([`access`]), execute whole workloads ([`sim`]), and compute the
//! two metrics the paper reports ([`metrics`]): the load-balancing factor
//! `LF` (Figure 4) and the total I/O cost (Figure 5).
//!
//! ## Quick example
//!
//! ```
//! use dcode_core::dcode::dcode;
//! use dcode_iosim::workload::{generate, WorkloadKind, WorkloadParams};
//! use dcode_iosim::sim::run_workload;
//!
//! let code = dcode(7).unwrap();
//! let ops = generate(WorkloadKind::Mixed, code.data_len(),
//!                    WorkloadParams::default(), 42);
//! let result = run_workload(&code, &ops);
//! assert!(result.lf() < 1.2);   // D-Code balances mixed workloads well
//! ```

pub mod access;
pub mod metrics;
pub mod sim;
pub mod trace;
pub mod workload;

pub use access::{
    degraded_read_accesses, degraded_write_accesses, double_degraded_read_accesses,
    normal_read_accesses, plan_degraded_segment, write_accesses, DegradedSegmentPlan, DiskAccesses,
};
pub use metrics::{io_cost, lf_display, load_balancing_factor};
pub use sim::{run_workload, run_workload_degraded, run_workload_parallel, SimResult};
pub use trace::{format_trace, parse_trace, zipf_trace, TraceParseError, ZipfTraceParams};
pub use workload::{generate, Op, OpKind, WorkloadKind, WorkloadParams};
