//! Per-disk access accounting for reads and partial-stripe writes.
//!
//! This is the paper's I/O model (Sections II and IV):
//!
//! * a **normal read** of `L` continuous data elements touches exactly the
//!   disks holding those elements — parity disks contribute nothing;
//! * a **degraded read** (one failed disk) additionally reads, for every
//!   lost requested element, the surviving cells of one parity equation
//!   covering it; elements already being read are free, shared sources are
//!   read once. The equation per lost element is chosen to minimise total
//!   extra reads — continuous runs sharing one horizontal parity are
//!   exactly what makes D-Code cheap here (Figure 1(a) vs 1(c));
//! * a **partial-stripe write** is a read-modify-write: every written data
//!   element and every affected parity element (including RDP/HDP-style
//!   cascades) is read once and written once (Figure 1(b) vs 1(d)).
//!
//! Requests longer than one stripe wrap into the (identically laid out)
//! next stripe: the request is decomposed into full passes plus boundary
//! segments, and sharing is accounted per stripe instance.

use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;

/// Per-disk access counts for one operation or an accumulated workload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiskAccesses {
    /// `per_disk[d]` = number of element I/Os on disk `d`.
    pub per_disk: Vec<u64>,
}

impl DiskAccesses {
    /// All-zero counters for `disks` disks.
    pub fn zero(disks: usize) -> Self {
        DiskAccesses {
            per_disk: vec![0; disks],
        }
    }

    /// Add `other`, scaled by `times` (an op repeated `T` times).
    pub fn add_scaled(&mut self, other: &DiskAccesses, times: u64) {
        assert_eq!(self.per_disk.len(), other.per_disk.len());
        for (a, b) in self.per_disk.iter_mut().zip(&other.per_disk) {
            *a += b * times;
        }
    }

    /// Total accesses across all disks (the paper's `Cost`).
    pub fn total(&self) -> u64 {
        self.per_disk.iter().sum()
    }

    /// Count one access to the disk holding `cell`.
    fn bump(&mut self, cell: Cell, amount: u64) {
        self.per_disk[cell.col] += amount;
    }
}

/// Split a logical request `[start, start+len)` over a stripe of `data_len`
/// elements into `(full_passes, boundary_segments)`, each segment being
/// `(start, len)` entirely inside one stripe instance.
pub fn segments(data_len: usize, start: usize, len: usize) -> (usize, Vec<(usize, usize)>) {
    assert!(data_len > 0);
    let start = start % data_len;
    let full = len / data_len;
    let rem = len % data_len;
    let mut segs = Vec::new();
    if rem > 0 {
        if start + rem <= data_len {
            segs.push((start, rem));
        } else {
            segs.push((start, data_len - start));
            segs.push((0, start + rem - data_len));
        }
    }
    (full, segs)
}

/// Accesses of a normal-mode read.
pub fn normal_read_accesses(layout: &CodeLayout, start: usize, len: usize) -> DiskAccesses {
    let mut acc = DiskAccesses::zero(layout.disks());
    let data_len = layout.data_len();
    let (full, segs) = segments(data_len, start, len);
    if full > 0 {
        for &cell in layout.data_cells() {
            acc.bump(cell, full as u64);
        }
    }
    for (s, l) in segs {
        for i in s..s + l {
            acc.bump(layout.logical_to_cell(i), 1);
        }
    }
    acc
}

/// The resolved plan for one degraded-read segment: which equations were
/// chosen for the lost elements and which surviving cells get read.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DegradedSegmentPlan {
    /// Requested cells that survive (read directly).
    pub surviving_requested: Vec<Cell>,
    /// Requested cells on the failed disk (reconstructed).
    pub lost: Vec<Cell>,
    /// Equation chosen per lost cell (parallel to `lost`).
    pub chosen_eqs: Vec<usize>,
    /// Extra surviving cells read for reconstruction (beyond the requested
    /// ones), deduplicated.
    pub extra_reads: BTreeSet<Cell>,
}

impl DegradedSegmentPlan {
    /// Total element reads issued to disks for this segment.
    pub fn total_reads(&self) -> usize {
        self.surviving_requested.len() + self.extra_reads.len()
    }
}

/// Plan one degraded-read segment (`len ≤ data_len`) under a single failed
/// disk, choosing per-lost-element equations to minimise total extra reads.
///
/// Under a single column failure every equation covering a lost data
/// element is usable (array-code equations touch each disk at most once),
/// so the choice set per element is its `member_eqs`. The optimiser is
/// exhaustive up to 4096 combinations (requests are ≤ 20 elements, so a
/// handful of lost cells at most), falling back to a greedy pass beyond.
pub fn plan_degraded_segment(
    layout: &CodeLayout,
    start: usize,
    len: usize,
    failed_col: usize,
) -> DegradedSegmentPlan {
    assert!(len <= layout.data_len());
    assert!(failed_col < layout.disks());
    let requested: Vec<Cell> = (start..start + len)
        .map(|i| layout.logical_to_cell(i))
        .collect();
    let surviving_requested: Vec<Cell> = requested
        .iter()
        .copied()
        .filter(|c| c.col != failed_col)
        .collect();
    let surviving_set: BTreeSet<Cell> = surviving_requested.iter().copied().collect();
    let lost: Vec<Cell> = requested
        .iter()
        .copied()
        .filter(|c| c.col == failed_col)
        .collect();

    // Candidate extra-read sets per lost element.
    let options: Vec<Vec<(usize, BTreeSet<Cell>)>> = lost
        .iter()
        .map(|&e| {
            let eqs = layout.member_eqs(e);
            assert!(
                !eqs.is_empty(),
                "data cell {e} of {} is unprotected",
                layout.name()
            );
            eqs.iter()
                .map(|&eq_idx| {
                    let extra: BTreeSet<Cell> = layout
                        .equation(eq_idx)
                        .cells()
                        .filter(|&c| c != e && !surviving_set.contains(&c))
                        .collect();
                    (eq_idx, extra)
                })
                .collect()
        })
        .collect();

    let combos: usize = options.iter().map(std::vec::Vec::len).product();
    let (chosen_eqs, extra_reads) = if combos == 0 {
        (Vec::new(), BTreeSet::new())
    } else if combos <= 4096 {
        // Exhaustive: enumerate the cartesian product.
        let mut best: Option<(Vec<usize>, BTreeSet<Cell>)> = None;
        let mut idx = vec![0usize; options.len()];
        loop {
            let mut union: BTreeSet<Cell> = BTreeSet::new();
            let mut eqs = Vec::with_capacity(options.len());
            for (k, &i) in idx.iter().enumerate() {
                let (eq_idx, extra) = &options[k][i];
                eqs.push(*eq_idx);
                union.extend(extra.iter().copied());
            }
            if best.as_ref().map_or(true, |(_, b)| union.len() < b.len()) {
                best = Some((eqs, union));
            }
            // Advance the mixed-radix counter.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    break;
                }
                idx[k] += 1;
                if idx[k] < options[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == idx.len() {
                break;
            }
        }
        best.expect("at least one combination exists")
    } else {
        // Greedy: pick per element the equation overlapping best with what
        // is already being read.
        let mut union: BTreeSet<Cell> = BTreeSet::new();
        let mut eqs = Vec::with_capacity(options.len());
        for opts in &options {
            let (eq_idx, extra) = opts
                .iter()
                .min_by_key(|(_, extra)| extra.difference(&union).count())
                .expect("non-empty options");
            union.extend(extra.iter().copied());
            eqs.push(*eq_idx);
        }
        (eqs, union)
    };

    DegradedSegmentPlan {
        surviving_requested,
        lost,
        chosen_eqs,
        extra_reads,
    }
}

/// Accesses of a degraded-mode read with one failed disk.
pub fn degraded_read_accesses(
    layout: &CodeLayout,
    start: usize,
    len: usize,
    failed_col: usize,
) -> DiskAccesses {
    let mut acc = DiskAccesses::zero(layout.disks());
    let data_len = layout.data_len();
    let (full, segs) = segments(data_len, start, len);
    let mut all_segs = segs;
    if full > 0 {
        // A full pass is the (0, data_len) segment repeated.
        for _ in 0..full {
            all_segs.push((0, data_len));
        }
    }
    for (s, l) in all_segs {
        let plan = plan_degraded_segment(layout, s, l, failed_col);
        for c in &plan.surviving_requested {
            acc.bump(*c, 1);
        }
        for c in &plan.extra_reads {
            acc.bump(*c, 1);
        }
    }
    acc
}

/// Accesses of a degraded-mode read with *two* failed disks — beyond the
/// paper's single-failure experiments, but the natural worst case for a
/// RAID-6 array. Lost requested elements are reconstructed through the
/// peeling chains of the double-failure recovery plan, restricted (via
/// [`dcode_core::decoder::RecoveryPlan::subplan_for`]) to exactly the
/// chains the request needs; requested elements already read are free.
pub fn double_degraded_read_accesses(
    layout: &CodeLayout,
    start: usize,
    len: usize,
    failed: [usize; 2],
) -> DiskAccesses {
    use dcode_core::decoder::plan_column_recovery;
    assert!(failed[0] != failed[1]);
    let mut acc = DiskAccesses::zero(layout.disks());
    let data_len = layout.data_len();
    let (full, segs) = segments(data_len, start, len);
    let mut all_segs = segs;
    for _ in 0..full {
        all_segs.push((0, data_len));
    }
    let full_plan =
        plan_column_recovery(layout, &failed).expect("verified RAID-6 codes tolerate two failures");
    for (s, l) in all_segs {
        let requested: Vec<Cell> = (s..s + l).map(|i| layout.logical_to_cell(i)).collect();
        let surviving: Vec<Cell> = requested
            .iter()
            .copied()
            .filter(|c| c.col != failed[0] && c.col != failed[1])
            .collect();
        let lost: BTreeSet<Cell> = requested
            .iter()
            .copied()
            .filter(|c| c.col == failed[0] || c.col == failed[1])
            .collect();
        let surviving_set: BTreeSet<Cell> = surviving.iter().copied().collect();
        for &c in &surviving {
            acc.bump(c, 1);
        }
        if !lost.is_empty() {
            let sub = full_plan.subplan_for(&lost);
            for cell in sub.surviving_reads() {
                if !surviving_set.contains(&cell) {
                    acc.bump(cell, 1);
                }
            }
        }
    }
    acc
}

/// Accesses of a read-modify-write partial-stripe write: each written data
/// element and each affected parity is read once and written once.
pub fn write_accesses(layout: &CodeLayout, start: usize, len: usize) -> DiskAccesses {
    let mut acc = DiskAccesses::zero(layout.disks());
    let data_len = layout.data_len();
    let (full, segs) = segments(data_len, start, len);
    let mut all_segs = segs;
    for _ in 0..full {
        all_segs.push((0, data_len));
    }
    for (s, l) in all_segs {
        let cells: Vec<Cell> = (s..s + l).map(|i| layout.logical_to_cell(i)).collect();
        for &c in &cells {
            acc.bump(c, 2); // read old + write new
        }
        for parity in layout.update_closure(&cells) {
            acc.bump(parity, 2); // read old + write new
        }
    }
    acc
}

/// Accesses of a read-modify-write partial-stripe write with one failed
/// disk — an extension beyond the paper's normal-mode write accounting.
///
/// * A written element on a *surviving* disk is read (old value) and
///   written, as in normal mode.
/// * A written element on the *failed* disk cannot be stored, but its
///   change must reach the parities: its old value is first reconstructed
///   through one parity equation (extra reads, shared with the values the
///   write already reads), then the delta is folded into its parities.
/// * Parities residing on the failed disk are skipped (they are
///   reconstructed at rebuild time anyway).
pub fn degraded_write_accesses(
    layout: &CodeLayout,
    start: usize,
    len: usize,
    failed_col: usize,
) -> DiskAccesses {
    let mut acc = DiskAccesses::zero(layout.disks());
    let data_len = layout.data_len();
    let (full, segs) = segments(data_len, start, len);
    let mut all_segs = segs;
    for _ in 0..full {
        all_segs.push((0, data_len));
    }
    for (s, l) in all_segs {
        let written: Vec<Cell> = (s..s + l).map(|i| layout.logical_to_cell(i)).collect();
        let surviving_written: BTreeSet<Cell> = written
            .iter()
            .copied()
            .filter(|c| c.col != failed_col)
            .collect();
        let lost_written: Vec<Cell> = written
            .iter()
            .copied()
            .filter(|c| c.col == failed_col)
            .collect();

        // Surviving written elements: read old + write new.
        for &c in &surviving_written {
            acc.bump(c, 2);
        }

        // Lost written elements: reconstruct old values. The surviving
        // written elements' old values are already read, so they are free
        // sources; extra reconstruction reads are deduplicated via the same
        // optimizer as degraded reads.
        let mut extra: BTreeSet<Cell> = BTreeSet::new();
        for &e in &lost_written {
            let best = layout
                .member_eqs(e)
                .iter()
                .map(|&eq_idx| {
                    layout
                        .equation(eq_idx)
                        .cells()
                        .filter(|&c| {
                            c != e && !surviving_written.contains(&c) && !extra.contains(&c)
                        })
                        .collect::<Vec<Cell>>()
                })
                .min_by_key(std::vec::Vec::len)
                .expect("every data cell has at least one equation");
            extra.extend(best);
        }
        for &c in &extra {
            acc.bump(c, 1);
        }

        // Parity updates: read + write each affected parity that survives.
        for parity in layout.update_closure(&written) {
            if parity.col != failed_col {
                acc.bump(parity, 2);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::dcode::dcode;

    #[test]
    fn segment_decomposition() {
        assert_eq!(segments(10, 3, 4), (0, vec![(3, 4)]));
        assert_eq!(segments(10, 8, 4), (0, vec![(8, 2), (0, 2)]));
        assert_eq!(segments(10, 0, 10), (1, vec![]));
        assert_eq!(segments(10, 7, 25), (2, vec![(7, 3), (0, 2)]));
        assert_eq!(segments(10, 13, 4), (0, vec![(3, 4)]));
    }

    #[test]
    fn normal_read_touches_only_data_disks() {
        let l = dcode(7).unwrap();
        let acc = normal_read_accesses(&l, 0, 7);
        // 7 continuous elements = the whole first row: one access per disk.
        assert_eq!(acc.per_disk, vec![1; 7]);
        assert_eq!(acc.total(), 7);
    }

    #[test]
    fn degraded_read_reuses_requested_elements() {
        // D-Code n=7: read D(1,3)..D(2,0) (logical 10..15) with disk 3
        // failed. The 5 requested elements share horizontal parity P(5,1);
        // the lost element D(1,3) is rebuilt from the other 4 (already
        // read) plus the parity — exactly 1 extra read.
        let l = dcode(7).unwrap();
        let plan = plan_degraded_segment(&l, 10, 5, 3);
        assert_eq!(plan.lost, vec![Cell::new(1, 3)]);
        assert_eq!(plan.extra_reads.len(), 1);
        assert_eq!(
            plan.extra_reads.iter().next().copied(),
            Some(Cell::new(5, 1))
        );
        assert_eq!(plan.total_reads(), 5);
    }

    #[test]
    fn single_element_degraded_read_costs_one_equation() {
        let l = dcode(7).unwrap();
        // Read exactly D(0,0) with disk 0 failed: must fetch one whole
        // equation minus the target = n−2 cells.
        let plan = plan_degraded_segment(&l, 0, 1, 0);
        assert_eq!(plan.surviving_requested.len(), 0);
        assert_eq!(plan.extra_reads.len(), 5); // (n−2)−1 members + parity
    }

    #[test]
    fn write_accounts_data_and_parities() {
        let l = dcode(7).unwrap();
        // One element: 2 I/Os data + 2×2 I/Os parity = 6.
        let acc = write_accesses(&l, 0, 1);
        assert_eq!(acc.total(), 6);
        // A full horizontal group (n−2 elements sharing one horizontal
        // parity): data 2(n−2); horizontal parities: 1 shared; deployment
        // parities: n−2 distinct → parity I/Os 2(1 + n−2).
        let acc = write_accesses(&l, 0, 5);
        assert_eq!(acc.total() as usize, 2 * 5 + 2 * (1 + 5));
    }

    #[test]
    fn double_degraded_read_costs_more_than_single() {
        let l = dcode(7).unwrap();
        for (start, len) in [(0usize, 5usize), (10, 9), (3, 14)] {
            let single = degraded_read_accesses(&l, start, len, 2).total();
            let double = double_degraded_read_accesses(&l, start, len, [2, 3]).total();
            let normal = normal_read_accesses(&l, start, len).total();
            assert!(
                double >= single,
                "start={start} len={len}: {double} < {single}"
            );
            assert!(single >= normal);
        }
    }

    #[test]
    fn double_degraded_never_reads_failed_disks() {
        let l = dcode(11).unwrap();
        let acc = double_degraded_read_accesses(&l, 4, 16, [0, 7]);
        assert_eq!(acc.per_disk[0], 0);
        assert_eq!(acc.per_disk[7], 0);
        assert!(acc.total() > 0);
    }

    #[test]
    fn wrapped_read_costs_full_passes() {
        let l = dcode(5).unwrap(); // data_len = 15
        let acc = normal_read_accesses(&l, 0, 30);
        assert_eq!(acc.total(), 30);
        let acc = normal_read_accesses(&l, 10, 20);
        assert_eq!(acc.total(), 20);
    }

    #[test]
    fn degraded_write_skips_failed_disk_and_costs_more_reads() {
        let l = dcode(7).unwrap();
        for (start, len) in [(0usize, 4usize), (10, 6), (20, 3)] {
            let normal = write_accesses(&l, start, len);
            for failed in 0..7 {
                let degraded = degraded_write_accesses(&l, start, len, failed);
                // Nothing is ever issued to the failed disk.
                assert_eq!(degraded.per_disk[failed], 0, "failed={failed}");
                // A write hitting the failed disk needs reconstruction
                // reads; one missing no lost elements can only save I/O
                // (skipped lost parities).
                let touches_failed = (start..start + len)
                    .any(|i| l.logical_to_cell(i).col == failed)
                    || l.update_closure(
                        &(start..start + len)
                            .map(|i| l.logical_to_cell(i))
                            .collect::<Vec<_>>(),
                    )
                    .iter()
                    .any(|c| c.col == failed);
                if !touches_failed {
                    assert_eq!(degraded.total(), normal.total());
                }
            }
        }
    }

    #[test]
    fn degraded_write_reconstruction_reuses_written_elements() {
        // Writing a full horizontal group with its only lost element inside:
        // the lost element's old value comes from the group's other members
        // (already read) plus the horizontal parity — 1 extra read.
        let l = dcode(7).unwrap();
        // Logical 10..15 share P(5,1); the lost element D(1,3) is on disk 3.
        let acc = degraded_write_accesses(&l, 10, 5, 3);
        // Lower bound: 4 surviving data RMW (8 I/Os) + 1 reconstruction
        // read (the shared horizontal parity) + updates to the horizontal
        // parity (2) and at least 4 surviving deployment parities (8).
        assert!(acc.total() >= 8 + 1 + 2 + 8, "total = {}", acc.total());
        assert_eq!(acc.per_disk[3], 0);
        // And it must be cheaper than reconstructing via a non-shared
        // equation would be: the extra-read set is exactly 1 element.
        let normal = write_accesses(&l, 10, 5).total();
        assert!(
            acc.total() <= normal + 1,
            "degraded {} vs normal {normal}",
            acc.total()
        );
    }

    #[test]
    fn add_scaled_accumulates() {
        let l = dcode(5).unwrap();
        let one = normal_read_accesses(&l, 0, 5);
        let mut acc = DiskAccesses::zero(5);
        acc.add_scaled(&one, 10);
        assert_eq!(acc.total(), one.total() * 10);
    }
}
