//! Workload generation (Section IV-A of the paper).
//!
//! Each operation is a 3-tuple `<S, L, T>`: starting logical data element,
//! length in elements, and repeat count. The paper evaluates three workload
//! classes — read-only (cloud storage), read-intensive 7:3 (SSD arrays),
//! and read-write 1:1 (traditional file systems) — each with 2000 random
//! tuples, `S` uniform over the stripe, `L ∈ 1..=20`, `T ∈ 1..=1000`.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Read or write.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Read `L` continuous data elements.
    Read,
    /// Write `L` continuous data elements (read-modify-write).
    Write,
}

/// One `<S, L, T>` operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Op {
    /// Read or write.
    pub kind: OpKind,
    /// Starting logical data element (`0..data_len` of the target stripe).
    pub start: usize,
    /// Number of continuous data elements.
    pub len: usize,
    /// How many times the operation repeats.
    pub times: usize,
}

/// The paper's three workload classes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// 100% reads (cloud storage systems).
    ReadOnly,
    /// Reads : writes = 7 : 3 (SSD arrays).
    ReadIntensive,
    /// Reads : writes = 1 : 1 (traditional file systems on disk arrays).
    Mixed,
}

impl WorkloadKind {
    /// Human-readable name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::ReadOnly => "Read-Only",
            WorkloadKind::ReadIntensive => "Read-Intensive",
            WorkloadKind::Mixed => "Read-Write Evenly Mixed",
        }
    }

    /// Probability that an operation is a read.
    pub fn read_fraction(self) -> f64 {
        match self {
            WorkloadKind::ReadOnly => 1.0,
            WorkloadKind::ReadIntensive => 0.7,
            WorkloadKind::Mixed => 0.5,
        }
    }

    /// All three classes, in the paper's figure order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::ReadOnly,
        WorkloadKind::ReadIntensive,
        WorkloadKind::Mixed,
    ];
}

/// Parameters of the random tuple generator; defaults match Section IV-A.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadParams {
    /// Number of `<S, L, T>` tuples.
    pub n_ops: usize,
    /// Inclusive range of `L`.
    pub len_range: (usize, usize),
    /// Inclusive range of `T`.
    pub times_range: (usize, usize),
}

impl Default for WorkloadParams {
    fn default() -> Self {
        // "2000 different 3-tuples … the range of L is 1 to 20 data
        // elements … the range of T is 1 to 1000."
        WorkloadParams {
            n_ops: 2000,
            len_range: (1, 20),
            times_range: (1, 1000),
        }
    }
}

/// Generate a reproducible workload against a stripe with `data_len`
/// logical data elements.
pub fn generate(kind: WorkloadKind, data_len: usize, params: WorkloadParams, seed: u64) -> Vec<Op> {
    assert!(data_len > 0);
    assert!(params.len_range.0 >= 1 && params.len_range.0 <= params.len_range.1);
    assert!(params.times_range.0 >= 1 && params.times_range.0 <= params.times_range.1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Draw via raw 64-bit samples (fixed RNG consumption) so that two codes
    // with different stripe sizes see the *same* op kinds, lengths, and
    // repeat counts from the same seed — only the start offsets scale.
    // This matches the paper's observation that all codes incur identical
    // cost under read-only workloads (the modulo bias at 2^64 scale is
    // negligible).
    (0..params.n_ops)
        .map(|_| {
            let is_read = (rng.next_u64() as f64 / u64::MAX as f64) < kind.read_fraction();
            let start = (rng.next_u64() % data_len as u64) as usize;
            let len_span = (params.len_range.1 - params.len_range.0 + 1) as u64;
            let len = params.len_range.0 + (rng.next_u64() % len_span) as usize;
            let t_span = (params.times_range.1 - params.times_range.0 + 1) as u64;
            let times = params.times_range.0 + (rng.next_u64() % t_span) as usize;
            Op {
                kind: if is_read { OpKind::Read } else { OpKind::Write },
                start,
                len,
                times,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(WorkloadKind::Mixed, 35, WorkloadParams::default(), 42);
        let b = generate(WorkloadKind::Mixed, 35, WorkloadParams::default(), 42);
        assert_eq!(a, b);
        let c = generate(WorkloadKind::Mixed, 35, WorkloadParams::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn read_only_is_all_reads() {
        let ops = generate(WorkloadKind::ReadOnly, 35, WorkloadParams::default(), 1);
        assert!(ops.iter().all(|o| o.kind == OpKind::Read));
    }

    #[test]
    fn ratios_approximately_hold() {
        let ops = generate(
            WorkloadKind::ReadIntensive,
            35,
            WorkloadParams::default(),
            7,
        );
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.7).abs() < 0.05, "read fraction {frac}");

        let ops = generate(WorkloadKind::Mixed, 35, WorkloadParams::default(), 7);
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn ranges_respected() {
        let ops = generate(WorkloadKind::Mixed, 35, WorkloadParams::default(), 3);
        assert!(ops.iter().all(|o| (1..=20).contains(&o.len)));
        assert!(ops.iter().all(|o| (1..=1000).contains(&o.times)));
        assert!(ops.iter().all(|o| o.start < 35));
        assert_eq!(ops.len(), 2000);
    }
}
