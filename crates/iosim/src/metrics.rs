//! The paper's two I/O-load metrics (Section IV-B).

use crate::access::DiskAccesses;

/// Load-balancing factor `LF = L_max / L_min` (equation (8) of the paper).
/// `f64::INFINITY` when some disk receives no I/O at all — the paper plots
/// this as the y-axis cap of 30.
pub fn load_balancing_factor(acc: &DiskAccesses) -> f64 {
    let max = acc.per_disk.iter().copied().max().unwrap_or(0);
    let min = acc.per_disk.iter().copied().min().unwrap_or(0);
    if min == 0 {
        if max == 0 {
            1.0 // no I/O at all: trivially balanced
        } else {
            f64::INFINITY
        }
    } else {
        max as f64 / min as f64
    }
}

/// Total I/O cost `Cost = Σ L(i)` (equation (9) of the paper).
pub fn io_cost(acc: &DiskAccesses) -> u64 {
    acc.total()
}

/// The value the paper's Figure 4 plots for a possibly-infinite LF
/// (the y-axis uses 30 to represent infinity).
pub fn lf_display(lf: f64) -> f64 {
    if lf.is_finite() {
        lf
    } else {
        30.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lf_of_balanced_load_is_one() {
        let acc = DiskAccesses {
            per_disk: vec![10, 10, 10],
        };
        assert_eq!(load_balancing_factor(&acc), 1.0);
    }

    #[test]
    fn lf_with_idle_disk_is_infinite() {
        let acc = DiskAccesses {
            per_disk: vec![10, 0, 10],
        };
        assert!(load_balancing_factor(&acc).is_infinite());
        assert_eq!(lf_display(load_balancing_factor(&acc)), 30.0);
    }

    #[test]
    fn lf_ratio() {
        let acc = DiskAccesses {
            per_disk: vec![30, 10, 20],
        };
        assert_eq!(load_balancing_factor(&acc), 3.0);
    }

    #[test]
    fn no_io_is_trivially_balanced() {
        let acc = DiskAccesses {
            per_disk: vec![0, 0],
        };
        assert_eq!(load_balancing_factor(&acc), 1.0);
    }

    #[test]
    fn cost_is_total() {
        let acc = DiskAccesses {
            per_disk: vec![3, 4, 5],
        };
        assert_eq!(io_cost(&acc), 12);
    }
}
