//! Workload execution: accumulate per-disk accesses over an op list.

use crate::access::{degraded_read_accesses, normal_read_accesses, write_accesses, DiskAccesses};
use crate::metrics::{io_cost, load_balancing_factor};
use crate::workload::{Op, OpKind};
use dcode_core::layout::CodeLayout;

/// Aggregate result of running a workload against one code.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Code name.
    pub code: String,
    /// Prime parameter.
    pub prime: usize,
    /// Accumulated per-disk accesses.
    pub accesses: DiskAccesses,
}

impl SimResult {
    /// Load-balancing factor of the accumulated load.
    pub fn lf(&self) -> f64 {
        load_balancing_factor(&self.accesses)
    }

    /// Total I/O cost of the accumulated load.
    pub fn cost(&self) -> u64 {
        io_cost(&self.accesses)
    }
}

/// Run a workload in normal mode (no failures) — the setting of the
/// paper's Figures 4 and 5.
pub fn run_workload(layout: &CodeLayout, ops: &[Op]) -> SimResult {
    let mut acc = DiskAccesses::zero(layout.disks());
    for op in ops {
        let one = match op.kind {
            OpKind::Read => normal_read_accesses(layout, op.start, op.len),
            OpKind::Write => write_accesses(layout, op.start, op.len),
        };
        acc.add_scaled(&one, op.times as u64);
    }
    SimResult {
        code: layout.name().to_string(),
        prime: layout.prime(),
        accesses: acc,
    }
}

/// [`run_workload`] fanned out over the persistent worker pool — ops are
/// independent, so each job accounts a chunk and the per-disk counters
/// are summed. Identical results to the sequential version; used by the
/// large parameter sweeps. The requested `threads` is clamped to the
/// host's available parallelism (no thread is spawned per call — jobs go
/// to [`minipool::global`]'s parked workers).
pub fn run_workload_parallel(layout: &CodeLayout, ops: &[Op], threads: usize) -> SimResult {
    let threads = minipool::effective_parallelism(threads);
    if threads == 1 || ops.len() < 64 {
        return run_workload(layout, ops);
    }
    let chunk = ops.len().div_ceil(threads);
    let shared = std::sync::Arc::new(layout.clone());
    let jobs: Vec<_> = ops
        .chunks(chunk)
        .map(|part| {
            let part: Vec<Op> = part.to_vec();
            let layout = std::sync::Arc::clone(&shared);
            move || run_workload(&layout, &part).accesses
        })
        .collect();
    let partials: Vec<DiskAccesses> = minipool::global().run(jobs);
    let mut acc = DiskAccesses::zero(layout.disks());
    for p in &partials {
        acc.add_scaled(p, 1);
    }
    SimResult {
        code: layout.name().to_string(),
        prime: layout.prime(),
        accesses: acc,
    }
}

/// Run a read workload in degraded mode with one failed disk — used by the
/// degraded-read analyses. Write ops are accounted as in normal mode.
pub fn run_workload_degraded(layout: &CodeLayout, ops: &[Op], failed_col: usize) -> SimResult {
    let mut acc = DiskAccesses::zero(layout.disks());
    for op in ops {
        let one = match op.kind {
            OpKind::Read => degraded_read_accesses(layout, op.start, op.len, failed_col),
            OpKind::Write => write_accesses(layout, op.start, op.len),
        };
        acc.add_scaled(&one, op.times as u64);
    }
    SimResult {
        code: layout.name().to_string(),
        prime: layout.prime(),
        accesses: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadKind, WorkloadParams};
    use dcode_core::dcode::dcode;

    #[test]
    fn read_only_cost_equals_elements_requested() {
        // Reads bring no extra accesses: Cost = Σ len·times.
        let l = dcode(7).unwrap();
        let ops = generate(
            WorkloadKind::ReadOnly,
            l.data_len(),
            WorkloadParams::default(),
            5,
        );
        let expected: u64 = ops.iter().map(|o| (o.len * o.times) as u64).sum();
        let res = run_workload(&l, &ops);
        assert_eq!(res.cost(), expected);
    }

    #[test]
    fn dcode_read_only_is_well_balanced() {
        let l = dcode(11).unwrap();
        let ops = generate(
            WorkloadKind::ReadOnly,
            l.data_len(),
            WorkloadParams::default(),
            5,
        );
        let res = run_workload(&l, &ops);
        assert!(res.lf() < 1.1, "LF = {}", res.lf());
    }

    #[test]
    fn parallel_workload_matches_sequential() {
        let l = dcode(11).unwrap();
        let ops = generate(
            WorkloadKind::Mixed,
            l.data_len(),
            WorkloadParams::default(),
            77,
        );
        let seq = run_workload(&l, &ops);
        for threads in [2usize, 3, 8] {
            let par = run_workload_parallel(&l, &ops, threads);
            assert_eq!(par.accesses, seq.accesses, "threads={threads}");
        }
    }

    #[test]
    fn degraded_cost_exceeds_normal_cost() {
        let l = dcode(7).unwrap();
        let ops = generate(
            WorkloadKind::ReadOnly,
            l.data_len(),
            WorkloadParams::default(),
            9,
        );
        let normal = run_workload(&l, &ops);
        let degraded = run_workload_degraded(&l, &ops, 2);
        assert!(degraded.cost() > normal.cost());
    }
}
