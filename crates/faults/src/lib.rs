#![warn(missing_docs)]
//! # dcode-faults
//!
//! The fault-tolerant disk layer under the D-Code reproduction's array
//! stack. The coding theory above this crate assumes a binary failure
//! model — a disk is present or absent — but real RAID-6 deployments face
//! the mixed modes the SD-codes and "Beyond RAID 6" literature documents:
//! individual sectors die, writes tear mid-block, bits rot silently, and
//! devices stall before they fail. This crate models all of that:
//!
//! * [`backend`] — the [`DiskBackend`] trait (block read/write/flush with
//!   typed [`DiskError`]s) and the in-memory [`MemBackend`];
//! * [`file`] — [`FileBackend`], a file-per-disk backend doing seek-based
//!   per-block I/O (no whole-disk buffering);
//! * [`inject`] — [`FaultInjector`], a deterministic wrapper driven by a
//!   seeded [`FaultPlan`]: transient errors, permanently bad sectors, torn
//!   writes, silent bit flips, and latency spikes, plus scheduled
//!   one-shot faults for reproducible chaos scenarios;
//! * [`crc`] — the CRC32 (IEEE) block checksum that converts silent
//!   corruption into detectable erasures one layer up;
//! * [`crash`] — deterministic crash points: [`FaultInjector::arm_crash`]
//!   unwinds the stack with a [`CrashPanic`] after exactly *n* writes,
//!   [`catch_crash`] catches it, and the injector's volatile write-cache
//!   mode drops un-flushed writes at the cut — the machinery behind the
//!   write-hole crash sweep;
//! * [`shared`] — [`SharedInjector`], a cloneable handle to one injector,
//!   so a harness keeps its grip on the medium across the crash unwind.
//!
//! Everything is deterministic per seed: a chaos run that finds a bug is
//! a regression test forever.

pub mod backend;
pub mod crash;
pub mod crc;
pub mod file;
pub mod inject;
pub mod shared;

pub use backend::{DiskBackend, DiskError, MemBackend};
pub use crash::{catch_crash, silence_crash_panics, CrashPanic};
pub use crc::crc32;
pub use file::{disk_file_name, FileBackend};
pub use inject::{FaultInjector, FaultKind, FaultPlan, FaultStats, ScheduledFault};
pub use shared::SharedInjector;
