//! Deterministic fault injection over any [`DiskBackend`].
//!
//! A [`FaultInjector`] wraps a backend and perturbs its behaviour under a
//! seeded [`FaultPlan`]: every fault the storage literature blames for
//! real data loss, reproducible from a single `u64`. Probabilistic faults
//! (transient errors, torn writes, in-flight bit flips, latency spikes)
//! are rolled per operation from a deterministic RNG; *scheduled* faults
//! (a disk dying at op 1000, a sector rotting at op 200) fire at exact
//! operation counts, so a chaos scenario can guarantee the interesting
//! transitions happen inside a bounded run.
//!
//! Latency is *accounted*, never slept: the injector charges virtual
//! microseconds per operation so soak runs report tail behaviour without
//! taking wall-clock time.

use crate::backend::{DiskBackend, DiskError};
use crate::crash::CrashPanic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// One deterministic fault, applied when the operation counter reaches
/// [`ScheduledFault::at_op`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The whole device dies; every subsequent operation returns
    /// [`DiskError::Failed`].
    DiskFail(usize),
    /// The sector becomes permanently unreadable (until rewritten — the
    /// injector models remap-on-write).
    BadSector {
        /// Target disk.
        disk: usize,
        /// Target block.
        block: usize,
    },
    /// One bit of the stored block flips silently at rest. The next read
    /// succeeds and returns the rotten bytes — only a checksum can tell.
    SilentCorrupt {
        /// Target disk.
        disk: usize,
        /// Target block.
        block: usize,
    },
}

/// A [`FaultKind`] pinned to an operation count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScheduledFault {
    /// Operation count at which the fault fires (first op is 1).
    pub at_op: u64,
    /// What happens.
    pub fault: FaultKind,
}

/// The complete description of a fault workload. All probabilities are
/// per-operation; `0.0` disables a fault class.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// RNG seed; two injectors with the same plan and the same call
    /// sequence behave identically.
    pub seed: u64,
    /// Probability a read fails with a retryable [`DiskError::Transient`].
    pub p_transient_read: f64,
    /// Probability a write fails with a retryable transient, leaving the
    /// medium untouched.
    pub p_transient_write: f64,
    /// Probability a write *tears*: a prefix of the new block lands, the
    /// tail keeps the old bytes, and the call reports a transient error.
    pub p_torn_write: f64,
    /// Probability a write is silently corrupted in flight (one bit flips
    /// between the caller's buffer and the medium; the call reports
    /// success).
    pub p_bit_flip_write: f64,
    /// Probability a read mints a new permanently bad sector at the
    /// addressed block (and fails with [`DiskError::BadSector`]).
    pub p_bad_sector_read: f64,
    /// Probability an operation takes a latency spike.
    pub p_latency_spike: f64,
    /// Virtual cost of a normal operation, microseconds.
    pub latency_base_us: u64,
    /// Additional virtual cost of a spiked operation, microseconds.
    pub latency_spike_us: u64,
    /// Model a volatile write-back cache: writes are buffered per disk and
    /// only reach the medium on [`DiskBackend::flush`]. A crash (armed via
    /// [`FaultInjector::arm_crash`], resolved by
    /// [`FaultInjector::power_cycle`]) discards everything un-flushed —
    /// this is the mode that catches ack-before-durable bugs, where a
    /// layer acknowledges a write it never made durable.
    pub volatile_cache: bool,
    /// Deterministic one-shot faults.
    pub scheduled: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan that injects nothing — the wrapper becomes a transparent
    /// (but still latency-accounting) pass-through.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            p_transient_read: 0.0,
            p_transient_write: 0.0,
            p_torn_write: 0.0,
            p_bit_flip_write: 0.0,
            p_bad_sector_read: 0.0,
            p_latency_spike: 0.0,
            latency_base_us: 100,
            latency_spike_us: 50_000,
            volatile_cache: false,
            scheduled: Vec::new(),
        }
    }
}

/// Counters of everything the injector did, for chaos-run reports.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct FaultStats {
    /// Total operations seen (reads + writes + flushes).
    pub ops: u64,
    /// Transient read errors injected.
    pub transient_reads: u64,
    /// Transient write errors injected (medium untouched).
    pub transient_writes: u64,
    /// Torn writes injected (prefix landed, error reported).
    pub torn_writes: u64,
    /// Writes silently corrupted in flight.
    pub bit_flips: u64,
    /// Bad sectors minted (probabilistic and scheduled).
    pub bad_sectors: u64,
    /// Whole-disk failures applied.
    pub disk_fails: u64,
    /// Silent at-rest corruptions applied (scheduled).
    pub silent_corruptions: u64,
    /// Latency spikes charged.
    pub latency_spikes: u64,
    /// Total virtual latency charged, microseconds.
    pub latency_us: u64,
    /// Crash points fired ([`FaultInjector::arm_crash`]).
    pub crashes: u64,
    /// Buffered writes discarded by [`FaultInjector::power_cycle`] —
    /// writes that were issued but never flushed when the power went.
    pub writes_dropped: u64,
}

/// A [`DiskBackend`] wrapper that injects the faults of a [`FaultPlan`].
pub struct FaultInjector<B> {
    inner: B,
    plan: FaultPlan,
    rng: StdRng,
    op: u64,
    next_scheduled: usize,
    bad: BTreeSet<(usize, usize)>,
    dead: BTreeSet<usize>,
    /// Un-flushed writes when [`FaultPlan::volatile_cache`] is on,
    /// keyed `(disk, block)` — the simulated write-back cache.
    cache: BTreeMap<(usize, usize), Vec<u8>>,
    /// Writes that have passed the crash gate (and so either reached the
    /// medium or the cache).
    writes_done: u64,
    /// Armed crash point: the write with this index (0-based) panics with
    /// [`CrashPanic`] instead of landing.
    crash_at: Option<u64>,
    stats: FaultStats,
}

impl<B: DiskBackend> FaultInjector<B> {
    /// Wrap `inner` under `plan`. Scheduled faults are sorted by
    /// operation count.
    pub fn new(inner: B, mut plan: FaultPlan) -> Self {
        plan.scheduled.sort_by_key(|s| s.at_op);
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            inner,
            plan,
            rng,
            op: 0,
            next_scheduled: 0,
            bad: BTreeSet::new(),
            dead: BTreeSet::new(),
            cache: BTreeMap::new(),
            writes_done: 0,
            crash_at: None,
            stats: FaultStats::default(),
        }
    }

    /// Fault counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Direct access to the wrapped backend (oracle checks in tests).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Kill a disk immediately (outside the schedule).
    pub fn fail_disk(&mut self, disk: usize) {
        if self.dead.insert(disk) {
            self.stats.disk_fails += 1;
        }
    }

    /// Whether the injector has marked `disk` dead.
    pub fn is_dead(&self, disk: usize) -> bool {
        self.dead.contains(&disk)
    }

    /// Make a sector permanently unreadable immediately (outside the
    /// schedule). Chaos harnesses use this to place media failures at
    /// exact points of their own op sequence.
    pub fn mint_bad_sector(&mut self, disk: usize, block: usize) {
        if self.bad.insert((disk, block)) {
            self.stats.bad_sectors += 1;
        }
    }

    /// Flip one deterministic bit of the stored block immediately,
    /// bypassing the fault machinery — at-rest bit rot on demand.
    pub fn corrupt_at_rest(&mut self, disk: usize, block: usize) {
        self.apply_scheduled(&FaultKind::SilentCorrupt { disk, block });
    }

    /// Currently bad sectors, as `(disk, block)` pairs.
    pub fn bad_sectors(&self) -> Vec<(usize, usize)> {
        self.bad.iter().copied().collect()
    }

    /// Arm a deterministic crash point: exactly `after_writes` more
    /// [`write_block`] calls succeed, then the next one panics with
    /// [`CrashPanic`] instead of touching the medium. The panic unwinds
    /// whatever stack sits above the backend — catch it with
    /// [`catch_crash`], then call [`power_cycle`] before remounting.
    ///
    /// [`write_block`]: DiskBackend::write_block
    /// [`catch_crash`]: crate::crash::catch_crash
    /// [`power_cycle`]: FaultInjector::power_cycle
    pub fn arm_crash(&mut self, after_writes: u64) {
        self.crash_at = Some(self.writes_done + after_writes);
    }

    /// Disarm a pending crash point without firing it.
    pub fn disarm_crash(&mut self) {
        self.crash_at = None;
    }

    /// Writes that have passed the crash gate so far — the coordinate
    /// system [`arm_crash`](FaultInjector::arm_crash) counts in. A crash
    /// sweep measures an op once uncrashed, then arms every index below
    /// the measured count.
    pub fn writes_done(&self) -> u64 {
        self.writes_done
    }

    /// Un-flushed buffered writes (always 0 unless
    /// [`FaultPlan::volatile_cache`] is set).
    pub fn unflushed_writes(&self) -> usize {
        self.cache.len()
    }

    /// Simulate the power coming back after a crash: drop every buffered
    /// write that was never flushed and disarm any pending crash point.
    /// The medium now holds exactly what was durable at the crash.
    pub fn power_cycle(&mut self) {
        self.stats.writes_dropped += self.cache.len() as u64;
        self.cache.clear();
        self.crash_at = None;
    }

    /// Advance the operation clock: charge latency and fire any scheduled
    /// faults that have come due.
    fn tick(&mut self) {
        self.op += 1;
        self.stats.ops += 1;
        self.stats.latency_us += self.plan.latency_base_us;
        if self.plan.p_latency_spike > 0.0 && self.rng.gen_bool(self.plan.p_latency_spike) {
            self.stats.latency_spikes += 1;
            self.stats.latency_us += self.plan.latency_spike_us;
        }
        while let Some(s) = self.plan.scheduled.get(self.next_scheduled) {
            if s.at_op > self.op {
                break;
            }
            let fault = s.fault.clone();
            self.next_scheduled += 1;
            self.apply_scheduled(&fault);
        }
    }

    fn apply_scheduled(&mut self, fault: &FaultKind) {
        match *fault {
            FaultKind::DiskFail(disk) => {
                if self.dead.insert(disk) {
                    self.stats.disk_fails += 1;
                }
            }
            FaultKind::BadSector { disk, block } => {
                if self.bad.insert((disk, block)) {
                    self.stats.bad_sectors += 1;
                }
            }
            FaultKind::SilentCorrupt { disk, block } => {
                // Flip one bit at rest, bypassing the fault machinery. A
                // buffered (un-flushed) copy is rotted in place, else the
                // medium itself.
                if let Some(cached) = self.cache.get_mut(&(disk, block)) {
                    let bit = self.rng.gen_range(0..cached.len() * 8);
                    cached[bit / 8] ^= 1 << (bit % 8);
                    self.stats.silent_corruptions += 1;
                    return;
                }
                let mut buf = vec![0u8; self.inner.block_size()];
                if self.inner.read_block(disk, block, &mut buf).is_ok() {
                    let bit = self.rng.gen_range(0..buf.len() * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                    if self.inner.write_block(disk, block, &buf).is_ok() {
                        self.stats.silent_corruptions += 1;
                    }
                }
            }
        }
    }
}

impl<B: DiskBackend> DiskBackend for FaultInjector<B> {
    fn disks(&self) -> usize {
        self.inner.disks()
    }

    fn blocks(&self) -> usize {
        self.inner.blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read_block(&mut self, disk: usize, block: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        self.tick();
        self.check_addr(disk, block)?;
        if self.dead.contains(&disk) {
            return Err(DiskError::Failed { disk });
        }
        if self.bad.contains(&(disk, block)) {
            return Err(DiskError::BadSector { disk, block });
        }
        if self.plan.p_bad_sector_read > 0.0 && self.rng.gen_bool(self.plan.p_bad_sector_read) {
            self.bad.insert((disk, block));
            self.stats.bad_sectors += 1;
            return Err(DiskError::BadSector { disk, block });
        }
        if self.plan.p_transient_read > 0.0 && self.rng.gen_bool(self.plan.p_transient_read) {
            self.stats.transient_reads += 1;
            return Err(DiskError::Transient);
        }
        if let Some(cached) = self.cache.get(&(disk, block)) {
            buf.copy_from_slice(cached);
            return Ok(());
        }
        self.inner.read_block(disk, block, buf)
    }

    fn write_block(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        self.tick();
        self.check_addr(disk, block)?;
        if self.dead.contains(&disk) {
            return Err(DiskError::Failed { disk });
        }
        if self.crash_at == Some(self.writes_done) {
            self.stats.crashes += 1;
            self.crash_at = None;
            std::panic::panic_any(CrashPanic {
                writes_done: self.writes_done,
            });
        }
        self.writes_done += 1;
        if self.plan.p_torn_write > 0.0 && self.rng.gen_bool(self.plan.p_torn_write) {
            // A prefix of the new data lands; the tail keeps the old
            // bytes; the caller sees a retryable error. A successful
            // retry overwrites the tear.
            let mut torn = vec![0u8; data.len()];
            let old_ok = match self.cache.get(&(disk, block)) {
                Some(cached) => {
                    torn.copy_from_slice(cached);
                    true
                }
                None => self.inner.read_block(disk, block, &mut torn).is_ok(),
            };
            if old_ok {
                let cut = self.rng.gen_range(1..data.len().max(2));
                let cut = cut.min(data.len());
                torn[..cut].copy_from_slice(&data[..cut]);
                if self.plan.volatile_cache {
                    self.cache.insert((disk, block), torn);
                } else {
                    let _ = self.inner.write_block(disk, block, &torn);
                }
            }
            self.stats.torn_writes += 1;
            return Err(DiskError::Transient);
        }
        if self.plan.p_transient_write > 0.0 && self.rng.gen_bool(self.plan.p_transient_write) {
            self.stats.transient_writes += 1;
            return Err(DiskError::Transient);
        }
        let flipped;
        let payload: &[u8] =
            if self.plan.p_bit_flip_write > 0.0 && self.rng.gen_bool(self.plan.p_bit_flip_write) {
                let mut buf = data.to_vec();
                let bit = self.rng.gen_range(0..buf.len() * 8);
                buf[bit / 8] ^= 1 << (bit % 8);
                self.stats.bit_flips += 1;
                flipped = buf;
                &flipped
            } else {
                data
            };
        if self.plan.volatile_cache {
            self.cache.insert((disk, block), payload.to_vec());
        } else {
            self.inner.write_block(disk, block, payload)?;
        }
        // Drives remap bad sectors on a successful write.
        self.bad.remove(&(disk, block));
        Ok(())
    }

    fn flush(&mut self, disk: usize) -> Result<(), DiskError> {
        self.tick();
        if self.dead.contains(&disk) {
            return Err(DiskError::Failed { disk });
        }
        // Destage this disk's buffered writes to the medium, then flush it.
        let pending: Vec<(usize, Vec<u8>)> = self
            .cache
            .range((disk, 0)..=(disk, usize::MAX))
            .map(|(&(_, b), data)| (b, data.clone()))
            .collect();
        for (block, data) in pending {
            self.inner.write_block(disk, block, &data)?;
            self.cache.remove(&(disk, block));
        }
        self.inner.flush(disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn quiet_injector() -> FaultInjector<MemBackend> {
        FaultInjector::new(MemBackend::new(3, 8, 16), FaultPlan::quiet(42))
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut inj = quiet_injector();
        let data = [9u8; 16];
        inj.write_block(0, 0, &data).unwrap();
        let mut buf = [0u8; 16];
        inj.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(inj.stats().ops, 2);
        assert!(inj.stats().latency_us > 0);
    }

    #[test]
    fn scheduled_faults_fire_at_exact_ops() {
        let mut plan = FaultPlan::quiet(7);
        plan.scheduled = vec![
            ScheduledFault {
                at_op: 2,
                fault: FaultKind::BadSector { disk: 1, block: 3 },
            },
            ScheduledFault {
                at_op: 4,
                fault: FaultKind::DiskFail(2),
            },
        ];
        let mut inj = FaultInjector::new(MemBackend::new(3, 8, 16), plan);
        let mut buf = [0u8; 16];
        inj.read_block(0, 0, &mut buf).unwrap(); // op 1
        inj.read_block(0, 1, &mut buf).unwrap(); // op 2: sector goes bad
        assert!(matches!(
            inj.read_block(1, 3, &mut buf), // op 3
            Err(DiskError::BadSector { disk: 1, block: 3 })
        ));
        assert!(matches!(
            inj.read_block(2, 0, &mut buf), // op 4: disk 2 dies
            Err(DiskError::Failed { disk: 2 })
        ));
        assert_eq!(inj.stats().bad_sectors, 1);
        assert_eq!(inj.stats().disk_fails, 1);
    }

    #[test]
    fn bad_sector_remaps_on_write() {
        let mut plan = FaultPlan::quiet(7);
        plan.scheduled = vec![ScheduledFault {
            at_op: 1,
            fault: FaultKind::BadSector { disk: 0, block: 0 },
        }];
        let mut inj = FaultInjector::new(MemBackend::new(1, 2, 8), plan);
        let mut buf = [0u8; 8];
        assert!(inj.read_block(0, 0, &mut buf).is_err());
        inj.write_block(0, 0, &[1u8; 8]).unwrap();
        inj.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
    }

    #[test]
    fn torn_write_leaves_mixed_bytes_and_reports_transient() {
        let mut plan = FaultPlan::quiet(3);
        plan.p_torn_write = 1.0;
        let mut inj = FaultInjector::new(MemBackend::new(1, 1, 32), plan);
        let old = [0xAAu8; 32];
        inj.inner_mut().disk_bytes_mut(0).copy_from_slice(&old);
        let new = [0x55u8; 32];
        assert!(matches!(
            inj.write_block(0, 0, &new),
            Err(DiskError::Transient)
        ));
        let medium = inj.inner_mut().disk_bytes_mut(0).to_vec();
        assert!(medium.contains(&0x55), "no new bytes landed");
        assert!(medium.contains(&0xAA), "no old bytes survived — not torn");
        assert_eq!(inj.stats().torn_writes, 1);
    }

    #[test]
    fn same_seed_same_behaviour() {
        let mut plan = FaultPlan::quiet(99);
        plan.p_transient_read = 0.3;
        plan.p_latency_spike = 0.2;
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(MemBackend::new(2, 4, 8), plan);
            let mut buf = [0u8; 8];
            let outcomes: Vec<bool> = (0..50)
                .map(|i| inj.read_block(i % 2, (i / 2) % 4, &mut buf).is_ok())
                .collect();
            (outcomes, inj.stats().clone())
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn silent_corruption_changes_exactly_one_bit() {
        let mut plan = FaultPlan::quiet(5);
        plan.scheduled = vec![ScheduledFault {
            at_op: 1,
            fault: FaultKind::SilentCorrupt { disk: 0, block: 0 },
        }];
        let mut inj = FaultInjector::new(MemBackend::new(1, 1, 16), plan);
        let mut buf = [0u8; 16];
        inj.read_block(0, 0, &mut buf).unwrap(); // fires the corruption
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit should have flipped");
        assert_eq!(inj.stats().silent_corruptions, 1);
    }
}
