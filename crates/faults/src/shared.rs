//! A cloneable handle to one [`FaultInjector`]: the backend a crash
//! harness mounts an array on while keeping its own grip on the medium.
//!
//! An armed crash unwinds whatever owns the backend — the array under
//! test, or an `attach` that consumed it halfway through replay — and a
//! by-value backend would be dropped with it, taking the simulated medium
//! along. [`SharedInjector`] routes every [`DiskBackend`] call through an
//! `Arc<Mutex<…>>`, so the harness clone survives the unwind: it can
//! [`power_cycle`](crate::FaultInjector::power_cycle) the injector, arm
//! the next crash point, and hand a fresh clone to the remount.
//!
//! The mutex is deliberately poison-tolerant: a [`CrashPanic`] fires
//! *inside* a backend call, i.e. while the lock is held, so every
//! crash poisons it — which is exactly the situation the type exists for.
//!
//! [`CrashPanic`]: crate::CrashPanic

use crate::backend::{DiskBackend, DiskError};
use crate::inject::FaultInjector;
use std::sync::{Arc, Mutex, MutexGuard};

/// A cloneable [`DiskBackend`] delegating to a shared [`FaultInjector`].
pub struct SharedInjector<B> {
    inner: Arc<Mutex<FaultInjector<B>>>,
}

impl<B> Clone for SharedInjector<B> {
    fn clone(&self) -> Self {
        SharedInjector {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: DiskBackend> SharedInjector<B> {
    /// Wrap an injector; clones of the returned handle all address the
    /// same injector (and the same medium).
    pub fn new(injector: FaultInjector<B>) -> Self {
        SharedInjector {
            inner: Arc::new(Mutex::new(injector)),
        }
    }

    /// Lock the underlying injector (to arm crash points, power-cycle,
    /// read stats, or reach the medium). Tolerates poisoning: a crash
    /// panic always fires while a backend call holds the lock.
    pub fn lock(&self) -> MutexGuard<'_, FaultInjector<B>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<B: DiskBackend> DiskBackend for SharedInjector<B> {
    fn disks(&self) -> usize {
        self.lock().disks()
    }

    fn blocks(&self) -> usize {
        self.lock().blocks()
    }

    fn block_size(&self) -> usize {
        self.lock().block_size()
    }

    fn read_block(&mut self, disk: usize, block: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        self.lock().read_block(disk, block, buf)
    }

    fn write_block(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        self.lock().write_block(disk, block, data)
    }

    fn flush(&mut self, disk: usize) -> Result<(), DiskError> {
        self.lock().flush(disk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::crash::catch_crash;
    use crate::inject::FaultPlan;

    #[test]
    fn handle_survives_a_crash_and_stays_usable() {
        let inj = FaultInjector::new(MemBackend::new(1, 4, 8), FaultPlan::quiet(3));
        let handle = SharedInjector::new(inj);
        let mut mounted = handle.clone();
        mounted.write_block(0, 0, &[1u8; 8]).unwrap();
        handle.lock().arm_crash(0);
        let out = catch_crash(move || {
            // `mounted` is moved in and dropped by the unwind, like an
            // array consumed by `attach` would be.
            mounted.write_block(0, 1, &[2u8; 8]).unwrap();
        });
        assert!(out.is_none());
        // The medium is still reachable through the surviving handle,
        // despite the poisoned lock.
        handle.lock().power_cycle();
        let mut again = handle.clone();
        let mut buf = [0u8; 8];
        again.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 8]);
        again.read_block(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8], "crashed write must not have landed");
    }
}
