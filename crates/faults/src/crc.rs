//! CRC32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! The array layer stamps every block with its CRC32 so silent corruption
//! — bit rot, torn writes that survived their retries, firmware lying
//! about a write — is *detected* at read time and converted into an
//! erasure the RAID-6 code can repair. CRC32 is the classic storage-page
//! checksum: 4 bytes of state per block, undetected-error probability
//! ~2⁻³² per corrupted block, and fast enough to be invisible next to the
//! XOR kernels.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `data` (IEEE, init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0..255).collect();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
