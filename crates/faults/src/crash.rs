//! Deterministic crash points: the panic payload a [`FaultInjector`]
//! throws when an armed crash fires, and the harness-side catcher.
//!
//! A crash is modelled as a panic with a dedicated payload type unwinding
//! the entire I/O stack mid-operation — exactly what a power cut does to
//! the code above the device. The harness wraps the operation in
//! [`catch_crash`], which converts a [`CrashPanic`] unwind into `None`
//! and re-raises every other panic (an assertion failure in the code
//! under test must still fail the test).
//!
//! [`FaultInjector`]: crate::FaultInjector

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Panic payload thrown by an armed crash point.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CrashPanic {
    /// Writes that had passed the crash gate when the power went — the
    /// crash fired on write index `writes_done` (0-based).
    pub writes_done: u64,
}

/// Install a panic hook (once per process) that swallows the default
/// "thread panicked" report for [`CrashPanic`] payloads and delegates
/// everything else to the previous hook. A crash sweep fires hundreds of
/// deliberate panics; without this the output drowns in backtraces that
/// signal nothing.
pub fn silence_crash_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Run `f`, converting a [`CrashPanic`] unwind into `None`. Any other
/// panic is resumed unchanged. Installs the silencing hook on first use.
pub fn catch_crash<T>(f: impl FnOnce() -> T) -> Option<T> {
    silence_crash_panics();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<CrashPanic>().is_some() {
                None
            } else {
                resume_unwind(payload)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::{DiskBackend, FaultInjector, FaultPlan};

    #[test]
    fn crash_fires_after_exactly_n_writes() {
        let mut inj = FaultInjector::new(MemBackend::new(1, 8, 4), FaultPlan::quiet(1));
        inj.arm_crash(2);
        let out = catch_crash(|| {
            for b in 0..4 {
                inj.write_block(0, b, &[b as u8; 4]).unwrap();
            }
        });
        assert!(out.is_none(), "crash point must fire");
        assert_eq!(inj.writes_done(), 2);
        assert_eq!(inj.stats().crashes, 1);
        // The two gated writes landed; the third never touched the medium.
        inj.power_cycle();
        let mut buf = [0u8; 4];
        inj.read_block(0, 1, &mut buf).unwrap();
        assert_eq!(buf, [1; 4]);
        inj.read_block(0, 2, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn volatile_cache_loses_unflushed_writes_at_power_cycle() {
        let mut plan = FaultPlan::quiet(2);
        plan.volatile_cache = true;
        let mut inj = FaultInjector::new(MemBackend::new(2, 4, 4), plan);
        inj.write_block(0, 0, &[7; 4]).unwrap();
        inj.write_block(1, 0, &[8; 4]).unwrap();
        inj.flush(0).unwrap(); // disk 0 durable, disk 1 still buffered
        assert_eq!(inj.unflushed_writes(), 1);
        // Reads see the buffered copy until the crash.
        let mut buf = [0u8; 4];
        inj.read_block(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [8; 4]);
        inj.power_cycle();
        assert_eq!(inj.stats().writes_dropped, 1);
        inj.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [7; 4], "flushed write must survive");
        inj.read_block(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 4], "un-flushed write must be lost");
    }

    #[test]
    fn foreign_panics_are_resumed() {
        let out = std::panic::catch_unwind(|| catch_crash(|| panic!("real bug")));
        assert!(out.is_err(), "non-crash panics must propagate");
    }
}
