//! The block-device abstraction: [`DiskBackend`] with typed [`DiskError`]s,
//! and the in-memory reference implementation [`MemBackend`].
//!
//! A backend models an array of `disks` identical devices, each holding
//! `blocks` fixed-size blocks. All addressing is `(disk, block)`; the array
//! layer above decides what a block means (one element of one stripe).

use std::fmt;

/// A typed disk I/O failure.
///
/// The split matters to the retry policy one layer up: [`Transient`]
/// failures are worth retrying, [`BadSector`] and [`Failed`] are not —
/// they must be converted into erasures and served through parity.
///
/// [`Transient`]: DiskError::Transient
/// [`BadSector`]: DiskError::BadSector
/// [`Failed`]: DiskError::Failed
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DiskError {
    /// A retryable hiccup (bus reset, command timeout). The operation may
    /// succeed if reissued; a torn write surfaces as this, with the medium
    /// left holding a mix of old and new bytes.
    Transient,
    /// The addressed sector is permanently unreadable. Writes may succeed
    /// (drives remap on write); reads will keep failing.
    BadSector {
        /// Failing disk.
        disk: usize,
        /// Failing block index.
        block: usize,
    },
    /// The whole device is gone; every operation fails.
    Failed {
        /// The dead disk.
        disk: usize,
    },
    /// The address lies outside the device geometry.
    OutOfRange {
        /// Requested disk.
        disk: usize,
        /// Requested block.
        block: usize,
    },
    /// An unclassified I/O error from a real backing store (file backend).
    Io(String),
}

impl DiskError {
    /// Whether a retry of the same operation can plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, DiskError::Transient)
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Transient => write!(f, "transient I/O error"),
            DiskError::BadSector { disk, block } => {
                write!(f, "bad sector: disk {disk} block {block}")
            }
            DiskError::Failed { disk } => write!(f, "disk {disk} has failed"),
            DiskError::OutOfRange { disk, block } => {
                write!(f, "address out of range: disk {disk} block {block}")
            }
            DiskError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// A fixed-geometry array of block devices.
///
/// Methods take `&mut self` even for reads: real backends keep seek
/// positions and error state, and the fault injector advances its
/// deterministic schedule on every access.
pub trait DiskBackend {
    /// Number of devices.
    fn disks(&self) -> usize;
    /// Blocks per device.
    fn blocks(&self) -> usize;
    /// Bytes per block.
    fn block_size(&self) -> usize;
    /// Read one block into `buf` (`buf.len() == block_size`).
    fn read_block(&mut self, disk: usize, block: usize, buf: &mut [u8]) -> Result<(), DiskError>;
    /// Write one block from `data` (`data.len() == block_size`).
    fn write_block(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError>;
    /// Flush one device's outstanding writes to stable storage.
    fn flush(&mut self, disk: usize) -> Result<(), DiskError>;

    /// Bounds-check an address against the geometry.
    fn check_addr(&self, disk: usize, block: usize) -> Result<(), DiskError> {
        if disk >= self.disks() || block >= self.blocks() {
            return Err(DiskError::OutOfRange { disk, block });
        }
        Ok(())
    }
}

// The trait is object-safe; forwarding through `Box` lets a server mix
// concrete backends (file, memory, fault-injected) behind one shard type.
impl<T: DiskBackend + ?Sized> DiskBackend for Box<T> {
    fn disks(&self) -> usize {
        (**self).disks()
    }
    fn blocks(&self) -> usize {
        (**self).blocks()
    }
    fn block_size(&self) -> usize {
        (**self).block_size()
    }
    fn read_block(&mut self, disk: usize, block: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        (**self).read_block(disk, block, buf)
    }
    fn write_block(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        (**self).write_block(disk, block, data)
    }
    fn flush(&mut self, disk: usize) -> Result<(), DiskError> {
        (**self).flush(disk)
    }
}

/// An in-memory backend: one `Vec<u8>` per disk. The reference
/// implementation for tests, the chaos oracle, and the soak harness.
pub struct MemBackend {
    block_size: usize,
    blocks: usize,
    disks: Vec<Vec<u8>>,
}

impl MemBackend {
    /// A zero-filled array of `disks` devices of `blocks` blocks each.
    pub fn new(disks: usize, blocks: usize, block_size: usize) -> Self {
        assert!(disks > 0 && blocks > 0 && block_size > 0);
        MemBackend {
            block_size,
            blocks,
            disks: (0..disks).map(|_| vec![0u8; blocks * block_size]).collect(),
        }
    }

    /// Raw bytes of one disk (testing: inspect or corrupt the medium
    /// directly, bypassing every checksum).
    pub fn disk_bytes_mut(&mut self, disk: usize) -> &mut [u8] {
        &mut self.disks[disk]
    }
}

impl DiskBackend for MemBackend {
    fn disks(&self) -> usize {
        self.disks.len()
    }

    fn blocks(&self) -> usize {
        self.blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&mut self, disk: usize, block: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        self.check_addr(disk, block)?;
        assert_eq!(buf.len(), self.block_size);
        let off = block * self.block_size;
        buf.copy_from_slice(&self.disks[disk][off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        self.check_addr(disk, block)?;
        assert_eq!(data.len(), self.block_size);
        let off = block * self.block_size;
        self.disks[disk][off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }

    fn flush(&mut self, _disk: usize) -> Result<(), DiskError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_roundtrips() {
        let mut b = MemBackend::new(3, 4, 16);
        let data: Vec<u8> = (0..16).collect();
        b.write_block(1, 2, &data).unwrap();
        let mut buf = vec![0u8; 16];
        b.read_block(1, 2, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Other blocks untouched.
        b.read_block(1, 1, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
        b.flush(1).unwrap();
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = MemBackend::new(2, 2, 8);
        let mut buf = vec![0u8; 8];
        assert!(matches!(
            b.read_block(2, 0, &mut buf),
            Err(DiskError::OutOfRange { .. })
        ));
        assert!(matches!(
            b.write_block(0, 2, &buf),
            Err(DiskError::OutOfRange { .. })
        ));
    }

    #[test]
    fn retryability_classification() {
        assert!(DiskError::Transient.is_retryable());
        assert!(!DiskError::BadSector { disk: 0, block: 0 }.is_retryable());
        assert!(!DiskError::Failed { disk: 0 }.is_retryable());
        assert!(!DiskError::Io("x".into()).is_retryable());
    }
}
