//! A file-per-disk [`DiskBackend`]: disk `i` is `disk_<i>.bin` inside an
//! array directory, addressed block-at-a-time with seek-based I/O.
//!
//! This is the backend the CLI stripes real payloads through. It never
//! buffers a whole disk image: each block is written at its offset as it
//! is produced, so storing an array needs one stripe of memory, not one
//! array of memory.

use crate::backend::{DiskBackend, DiskError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Per-disk file length in bytes. Always computed in `u64`: `blocks *
/// block_size` as `usize` can overflow before the cast on 32-bit hosts
/// (a 2^20-block disk of 8 KiB blocks is 8 GiB — past `u32::MAX`), and
/// file offsets are 64-bit regardless of the host's pointer width.
fn byte_len(blocks: usize, block_size: usize) -> u64 {
    blocks as u64 * block_size as u64
}

/// File name of disk `i` inside an array directory (shared with the CLI's
/// directory layout).
pub fn disk_file_name(disk: usize) -> String {
    format!("disk_{disk}.bin")
}

/// A backend over one open file per disk.
pub struct FileBackend {
    files: Vec<File>,
    blocks: usize,
    block_size: usize,
}

impl FileBackend {
    /// Create (or truncate) `disks` disk files under `dir`, each
    /// pre-sized to `blocks × block_size` bytes, and open them for I/O.
    pub fn create(
        dir: &Path,
        disks: usize,
        blocks: usize,
        block_size: usize,
    ) -> std::io::Result<Self> {
        assert!(disks > 0 && blocks > 0 && block_size > 0);
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(Self::path(dir, d))?;
            f.set_len(byte_len(blocks, block_size))?;
            files.push(f);
        }
        Ok(FileBackend {
            files,
            blocks,
            block_size,
        })
    }

    /// Open `disks` existing disk files under `dir`. Fails if any file is
    /// missing or not exactly `blocks × block_size` bytes — degraded
    /// arrays are handled a layer up, by not opening dead disks through
    /// this constructor.
    pub fn open(
        dir: &Path,
        disks: usize,
        blocks: usize,
        block_size: usize,
    ) -> std::io::Result<Self> {
        let want = byte_len(blocks, block_size);
        let mut files = Vec::with_capacity(disks);
        for d in 0..disks {
            let path = Self::path(dir, d);
            let f = OpenOptions::new().read(true).write(true).open(&path)?;
            let len = f.metadata()?.len();
            if len != want {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: {len} bytes, expected {want}", path.display()),
                ));
            }
            files.push(f);
        }
        Ok(FileBackend {
            files,
            blocks,
            block_size,
        })
    }

    fn path(dir: &Path, disk: usize) -> PathBuf {
        dir.join(disk_file_name(disk))
    }

    fn seek_to(&mut self, disk: usize, block: usize) -> Result<(), DiskError> {
        self.check_addr(disk, block)?;
        self.files[disk]
            .seek(SeekFrom::Start(block as u64 * self.block_size as u64))
            .map_err(|e| DiskError::Io(e.to_string()))?;
        Ok(())
    }
}

impl DiskBackend for FileBackend {
    fn disks(&self) -> usize {
        self.files.len()
    }

    fn blocks(&self) -> usize {
        self.blocks
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn read_block(&mut self, disk: usize, block: usize, buf: &mut [u8]) -> Result<(), DiskError> {
        assert_eq!(buf.len(), self.block_size);
        self.seek_to(disk, block)?;
        self.files[disk]
            .read_exact(buf)
            .map_err(|e| DiskError::Io(e.to_string()))
    }

    fn write_block(&mut self, disk: usize, block: usize, data: &[u8]) -> Result<(), DiskError> {
        assert_eq!(data.len(), self.block_size);
        self.seek_to(disk, block)?;
        self.files[disk]
            .write_all(data)
            .map_err(|e| DiskError::Io(e.to_string()))
    }

    fn flush(&mut self, disk: usize) -> Result<(), DiskError> {
        if disk >= self.files.len() {
            return Err(DiskError::OutOfRange { disk, block: 0 });
        }
        self.files[disk]
            .sync_data()
            .map_err(|e| DiskError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcode-faults-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_write_reopen_read() {
        let dir = tmpdir("roundtrip");
        let mut b = FileBackend::create(&dir, 2, 3, 8).unwrap();
        let data = [7u8; 8];
        b.write_block(1, 2, &data).unwrap();
        b.flush(1).unwrap();
        drop(b);

        let mut b = FileBackend::open(&dir, 2, 3, 8).unwrap();
        let mut buf = [0u8; 8];
        b.read_block(1, 2, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Unwritten blocks read back as zeros (file was pre-sized).
        b.read_block(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offsets_past_4gib_do_not_overflow() {
        // Regression: `seek_to` used to compute `(block * block_size) as
        // u64`, overflowing the usize multiply before the cast on 32-bit
        // hosts. Address a block whose byte offset exceeds u32::MAX —
        // the file is sparse, so the 8 GiB disk costs almost no space.
        let dir = tmpdir("hugeoff");
        let blocks = 1 << 20; // 2^20 blocks × 8 KiB = 8 GiB per disk
        let block_size = 8192;
        assert!(byte_len(blocks, block_size) > u64::from(u32::MAX));
        let mut b = FileBackend::create(&dir, 1, blocks, block_size).unwrap();
        let data = vec![0xA5u8; block_size];
        let last = blocks - 1;
        b.write_block(0, last, &data).unwrap();
        let mut buf = vec![0u8; block_size];
        b.read_block(0, last, &mut buf).unwrap();
        assert_eq!(buf, data);
        // A block just below the 4 GiB line is untouched by that write.
        b.read_block(0, (1 << 19) - 1, &mut buf).unwrap();
        assert_eq!(buf, vec![0u8; block_size]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_wrong_geometry() {
        let dir = tmpdir("geom");
        drop(FileBackend::create(&dir, 1, 2, 8).unwrap());
        assert!(FileBackend::open(&dir, 1, 3, 8).is_err()); // wrong length
        assert!(FileBackend::open(&dir, 2, 2, 8).is_err()); // missing disk
        let _ = std::fs::remove_dir_all(&dir);
    }
}
