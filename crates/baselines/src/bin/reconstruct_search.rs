//! Constraint search pinning the H-Code / HDP reconstructions (DESIGN.md §5).
//!
//! For each candidate rule this scans the exhaustive double-failure checker
//! over p ∈ {5, 7, 11, 13, 17} and reports which candidates yield a true
//! RAID-6 MDS code. The winners are hard-coded as `PINNED_MAP` /
//! `PINNED_VARIANT` in the library, and the library's tests re-verify them;
//! this binary documents how they were chosen and lets anyone re-run the
//! search.

use dcode_baselines::hcode::{hcode_with_map, DiagonalMap};
use dcode_baselines::hdp::{hdp_with_variant, Coupling, HdpVariant};
use dcode_core::mds::verify_double_fault_tolerance;
use dcode_core::metrics::update_complexity;

const PRIMES: [usize; 5] = [5, 7, 11, 13, 17];

fn main() {
    println!("== H-Code diagonal class-map search (class(i) = a*i + a + 1 mod p) ==");
    for a in 1..5usize {
        let mut per_prime = Vec::new();
        let mut ok = true;
        for p in PRIMES {
            let layout = match hcode_with_map(p, DiagonalMap { a }) {
                Ok(l) => l,
                Err(e) => {
                    println!("  a={a}: construction failed at p={p}: {e}");
                    ok = false;
                    break;
                }
            };
            match verify_double_fault_tolerance(&layout) {
                Ok(()) => per_prime.push((p, true)),
                Err(_) => {
                    per_prime.push((p, false));
                    ok = false;
                }
            }
        }
        let avg =
            hcode_with_map(7, DiagonalMap { a }).map_or(f64::NAN, |l| update_complexity(&l).0);
        println!(
            "  a={a}: {} per-prime={per_prime:?} avg-update(p=7)={avg:.2}",
            if ok { "PASS" } else { "fail" }
        );
    }

    println!("== HDP variant search (class(i) = a*i + a − 2 mod p, per-prime multiplier scan) ==");
    for coupling in [
        Coupling::RowCoversAntiDiag,
        Coupling::AntiDiagCoversRow,
        Coupling::Independent,
    ] {
        for p in PRIMES {
            let mut passing = Vec::new();
            for a in 1..p {
                let v = HdpVariant { coupling, a };
                if let Ok(layout) = hdp_with_variant(p, v) {
                    if verify_double_fault_tolerance(&layout).is_ok() {
                        passing.push(a);
                    }
                }
            }
            println!(
                "  {coupling:?} p={p}: passing multipliers {passing:?} \
                 (closed forms: p−1 = {}, (p−1)/2 = {})",
                p - 1,
                (p - 1) / 2
            );
        }
    }
    let avg = update_complexity(&dcode_baselines::hdp::hdp(7).unwrap()).0;
    println!("  pinned HDP (a = p−1, AntiDiagCoversRow) avg-update(p=7) = {avg:.2}");
}
