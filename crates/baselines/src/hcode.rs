//! H-Code (Wu, Wan, He, Cao & Xie, IPDPS'11) — **reconstruction**.
//!
//! The original paper is not retrievable in this offline environment and the
//! code has no open-source implementation, so this module reconstructs
//! H-Code from its documented, load-bearing structure (see DESIGN.md §5):
//!
//! * `p+1` disks (`p` prime), `p−1` rows;
//! * all horizontal parities on a dedicated disk (column `p`); the
//!   horizontal parity of row `i` is the XOR of the row's data elements;
//! * anti-diagonal parities *inside* the data area at positions `(i, i+1)`
//!   (column 0 carries no parity);
//! * optimal update complexity — every data element in exactly one
//!   horizontal and one anti-diagonal equation;
//! * MDS for prime `p`.
//!
//! The geometry that closes perfectly under these constraints is the mod-`p`
//! diagonal family `⟨c−r⟩ₚ`: the parity positions `(i, i+1)` are *exactly*
//! the cells of class `1` (which therefore holds no data), and the remaining
//! `p−1` classes each hold exactly `p−1` data cells — a perfect partition
//! with no orphan cells and update complexity exactly 2. One degree of
//! freedom remains: which class each parity stores. [`DiagonalMap`] selects
//! the affine assignment `class(i) = ⟨a·i + a + 1⟩ₚ` (the `+a+1` offset is
//! forced: it is the unique offset making the image miss class 1);
//! the crate's `reconstruct_search` binary scans `a` against the exhaustive
//! MDS checker and [`hcode`] uses the pinned winner.

use dcode_core::dcode::ConstructError;
use dcode_core::equation::EquationKind;
use dcode_core::grid::Cell;
use dcode_core::layout::{CodeLayout, LayoutBuilder};
use dcode_core::modmath::{is_prime, md};

/// Affine assignment of diagonal classes to the parity positions:
/// parity `(i, i+1)` stores the XOR of diagonal class `⟨a·i + a + 1⟩ₚ`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DiagonalMap {
    /// Class-map multiplier, `1 ≤ a ≤ p−1` (invertible mod `p`).
    pub a: usize,
}

/// The class map pinned by the reconstruction search (see the crate's
/// `reconstruct_search` binary): verified MDS for p ∈ {5, 7, 11, 13, 17}.
pub const PINNED_MAP: DiagonalMap = DiagonalMap { a: 1 };

/// Build the H-Code reconstruction with an explicit diagonal class map.
pub fn hcode_with_map(p: usize, map: DiagonalMap) -> Result<CodeLayout, ConstructError> {
    if !is_prime(p) {
        return Err(ConstructError::NotPrime(p));
    }
    if p < 5 {
        return Err(ConstructError::TooSmall(p));
    }
    let rows = p - 1;
    let mut b = LayoutBuilder::new("H-Code", p, rows, p + 1);

    // Horizontal parities on the dedicated disk p: row i's data cells are
    // columns 0..p−1 except the anti-diagonal parity at column i+1.
    for i in 0..rows {
        let members: Vec<Cell> = (0..p)
            .filter(|&c| c != i + 1)
            .map(|c| Cell::new(i, c))
            .collect();
        b.equation(EquationKind::Row, Cell::new(i, p), members);
    }

    // Anti-diagonal parities at (i, i+1): the data cells of diagonal class
    // d(i) = ⟨a·i + a + 1⟩ₚ, i.e. cells (r, ⟨r + d⟩ₚ) for every row r.
    // Class 1 is exactly the parity line, so d(i) ≠ 1 for every i and all
    // members are data cells.
    for i in 0..rows {
        let d = md((map.a * i + map.a + 1) as i64, p);
        debug_assert_ne!(d, 1, "class map must avoid the parity line");
        let members: Vec<Cell> = (0..rows)
            .map(|r| Cell::new(r, md(r as i64 + d as i64, p)))
            .collect();
        b.equation(EquationKind::AntiDiagonal, Cell::new(i, i + 1), members);
    }

    Ok(b.build()
        .expect("H-Code reconstruction is structurally valid"))
}

/// Build the pinned H-Code reconstruction over `p+1` disks.
pub fn hcode(p: usize) -> Result<CodeLayout, ConstructError> {
    hcode_with_map(p, PINNED_MAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::verify_mds;
    use dcode_core::metrics::update_complexity;
    use dcode_core::PAPER_PRIMES;

    #[test]
    fn pinned_map_is_mds_for_paper_primes() {
        for p in PAPER_PRIMES {
            verify_mds(&hcode(p).unwrap()).unwrap();
        }
    }

    #[test]
    fn shape() {
        let l = hcode(7).unwrap();
        assert_eq!(l.disks(), 8);
        assert_eq!(l.rows(), 6);
        // Dedicated horizontal parity disk.
        assert_eq!(l.parity_count_in_col(7), 6);
        // Column 0 all data; columns 1..=6 one anti-diagonal parity each.
        assert_eq!(l.parity_count_in_col(0), 0);
        for c in 1..7 {
            assert_eq!(l.parity_count_in_col(c), 1);
        }
        assert_eq!(l.data_len(), 36); // (p−1)² data cells
    }

    #[test]
    fn parities_sit_on_the_documented_diagonal() {
        let l = hcode(11).unwrap();
        for i in 0..10 {
            assert!(l.kind(Cell::new(i, i + 1)).is_parity());
        }
    }

    #[test]
    fn row_runs_share_the_row_parity() {
        // H-Code's selling point: continuous elements in one row share one
        // horizontal parity — update cost grows by ~1 parity per element.
        let l = hcode(11).unwrap();
        // Logical elements 0..5 are row 0 (skipping the parity at col 1).
        let cells: Vec<_> = (0..5).map(|i| l.logical_to_cell(i)).collect();
        assert!(cells.iter().all(|c| c.row == 0));
        let parities = l.update_closure(&cells);
        // 1 shared row parity + 5 distinct anti-diagonal parities.
        assert_eq!(parities.len(), 6);
    }

    #[test]
    fn diagonal_classes_partition_the_data() {
        // Every data cell appears in exactly one anti-diagonal equation and
        // exactly one row equation (the optimal-update-complexity geometry).
        for p in [5usize, 7, 11] {
            let l = hcode(p).unwrap();
            for &cell in l.data_cells() {
                let kinds: Vec<_> = l
                    .member_eqs(cell)
                    .iter()
                    .map(|&e| l.equation(e).kind)
                    .collect();
                assert_eq!(kinds.len(), 2, "p={p} {cell}");
                assert!(kinds.contains(&EquationKind::Row));
                assert!(kinds.contains(&EquationKind::AntiDiagonal));
            }
        }
    }

    #[test]
    fn optimal_update_complexity() {
        for p in PAPER_PRIMES {
            let (avg, max) = update_complexity(&hcode(p).unwrap());
            assert!((avg - 2.0).abs() < 1e-9, "p={p}: avg={avg}");
            assert_eq!(max, 2);
        }
    }
}
