//! P-Code (Jin, Jiang, Feng et al.) — the pair-based vertical RAID-6 code
//! the D-Code paper mentions alongside H-Code in its Section II discussion.
//!
//! P-Code has a strikingly clean combinatorial construction over `p−1`
//! disks (`p` prime):
//!
//! * columns are labeled `1..p−1`; row 0 of each column holds that column's
//!   single parity element;
//! * every data element is identified with a 2-subset `{a, b}` of
//!   `{1, …, p−1}` with `a + b ≢ 0 (mod p)`;
//! * element `{a, b}` is stored in column `⟨a+b⟩ₚ` and participates in
//!   exactly the two parity equations of columns `a` and `b`.
//!
//! The counting closes perfectly: there are `(p−1)(p−3)/2` such subsets and
//! each column `j` receives exactly `(p−3)/2` of them (the pairs `{a, j−a}`),
//! so the stripe is `(p−1)/2` rows × `p−1` columns. Update complexity is
//! exactly 2 and the code is MDS — both verified by this crate's tests via
//! the exhaustive checker.
//!
//! P-Code is not part of the paper's measured comparison set, so it lives
//! outside `EVALUATED_CODES`, but it exercises the generic machinery with a
//! parity geometry unlike any of the other codes (parities in the *first*
//! row, pair-indexed membership).

use dcode_core::dcode::ConstructError;
use dcode_core::equation::EquationKind;
use dcode_core::grid::Cell;
use dcode_core::layout::{CodeLayout, LayoutBuilder};
use dcode_core::modmath::{is_prime, md};

/// Build P-Code over `p−1` disks.
pub fn pcode(p: usize) -> Result<CodeLayout, ConstructError> {
    if !is_prime(p) {
        return Err(ConstructError::NotPrime(p));
    }
    if p < 7 {
        // p = 5 gives (p−3)/2 = 1 data row and degenerate pair structure;
        // the published code starts at 7 disks−1… keep 5 allowed? The pair
        // construction is valid for p = 5 too (1 data row), so allow ≥ 5.
        if p < 5 {
            return Err(ConstructError::TooSmall(p));
        }
    }
    let disks = p - 1;
    let rows = (p - 1) / 2; // 1 parity row + (p−3)/2 data rows

    // Enumerate each column's data pairs in a deterministic order:
    // column j (label j+1 in 1..p−1) holds pairs {a, s−a} with s = j+1,
    // a < s−a (mod-free normalized ordering), a, s−a ∈ 1..p−1, a ≠ s−a.
    // Row index 1 + position in the sorted pair list.
    let mut pair_of_cell: Vec<Vec<(usize, usize)>> = vec![Vec::new(); disks];
    for (col, pairs) in pair_of_cell.iter_mut().enumerate() {
        let s = col + 1; // column label
        for a in 1..p {
            let b = md(s as i64 - a as i64, p);
            if b == 0 || b <= a {
                continue; // b = 0 excluded; b > a normalizes {a, b}
            }
            pairs.push((a, b));
        }
        pairs.sort_unstable();
        debug_assert_eq!(pairs.len(), (p - 3) / 2, "column {col} pair count");
    }

    let mut b = LayoutBuilder::new("P-Code", p, rows, disks);
    // Parity of column label c (stored at (0, c−1)) covers every data
    // element whose pair contains c.
    for c in 1..p {
        let mut members = Vec::new();
        for (col, pairs) in pair_of_cell.iter().enumerate() {
            for (row0, &(a, bb)) in pairs.iter().enumerate() {
                if a == c || bb == c {
                    members.push(Cell::new(1 + row0, col));
                }
            }
        }
        b.equation(EquationKind::Deployment, Cell::new(0, c - 1), members);
    }
    Ok(b.build()
        .expect("P-Code construction is structurally valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::verify_mds;
    use dcode_core::metrics::update_complexity;

    #[test]
    fn pcode_is_mds() {
        for p in [5usize, 7, 11, 13, 17] {
            verify_mds(&pcode(p).unwrap()).unwrap_or_else(|v| panic!("P-Code p={p}: {v}"));
        }
    }

    #[test]
    fn shape() {
        let l = pcode(7).unwrap();
        assert_eq!(l.disks(), 6);
        assert_eq!(l.rows(), 3);
        assert_eq!(l.data_len(), 12); // (p−1)(p−3)/2
        for c in 0..6 {
            assert_eq!(l.parity_count_in_col(c), 1);
            assert!(l.kind(Cell::new(0, c)).is_parity());
        }
    }

    #[test]
    fn optimal_update_complexity() {
        for p in [7usize, 11, 13] {
            let (avg, max) = update_complexity(&pcode(p).unwrap());
            assert!((avg - 2.0).abs() < 1e-9, "p={p}: {avg}");
            assert_eq!(max, 2);
        }
    }

    #[test]
    fn each_parity_covers_p_minus_3_elements() {
        // Column label c pairs with every other non-zero residue except the
        // one making the sum 0: p−3 partners, each a distinct element.
        let p = 11;
        let l = pcode(p).unwrap();
        for eq in l.equations() {
            assert_eq!(eq.members.len(), p - 3);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(pcode(9).is_err());
        assert!(pcode(3).is_err());
    }
}
