//! Name-indexed access to every code in the workspace.
//!
//! The figure-regeneration binaries iterate `EVALUATED_CODES` — the paper's
//! comparison set (RDP, H-Code, HDP, X-Code, D-Code) in the order the paper
//! plots them — and build each code for the evaluated primes.

use dcode_core::dcode::{dcode, xcode, ConstructError};
use dcode_core::layout::CodeLayout;

use crate::evenodd::evenodd;
use crate::hcode::hcode;
use crate::hdp::hdp;
use crate::pcode::pcode;
use crate::rdp::rdp;

/// Identifier for every code the workspace can build.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CodeId {
    /// RDP over `p+1` disks.
    Rdp,
    /// H-Code over `p+1` disks (reconstruction).
    HCode,
    /// HDP over `p−1` disks (reconstruction).
    Hdp,
    /// X-Code over `p` disks.
    XCode,
    /// D-Code over `p` disks — the paper's contribution.
    DCode,
    /// EVENODD over `p+2` disks (bonus baseline).
    EvenOdd,
    /// P-Code over `p−1` disks (bonus baseline).
    PCode,
}

impl CodeId {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CodeId::Rdp => "RDP",
            CodeId::HCode => "H-Code",
            CodeId::Hdp => "HDP",
            CodeId::XCode => "X-Code",
            CodeId::DCode => "D-Code",
            CodeId::EvenOdd => "EVENODD",
            CodeId::PCode => "P-Code",
        }
    }

    /// Number of disks this code spans for prime `p`.
    pub fn disks(self, p: usize) -> usize {
        match self {
            CodeId::Rdp | CodeId::HCode => p + 1,
            CodeId::Hdp => p - 1,
            CodeId::XCode | CodeId::DCode => p,
            CodeId::EvenOdd => p + 2,
            CodeId::PCode => p - 1,
        }
    }
}

/// The paper's comparison set, in its plotting order.
pub const EVALUATED_CODES: [CodeId; 5] = [
    CodeId::Rdp,
    CodeId::HCode,
    CodeId::Hdp,
    CodeId::XCode,
    CodeId::DCode,
];

/// Every code in the workspace.
pub const ALL_CODES: [CodeId; 7] = [
    CodeId::Rdp,
    CodeId::HCode,
    CodeId::Hdp,
    CodeId::XCode,
    CodeId::DCode,
    CodeId::EvenOdd,
    CodeId::PCode,
];

/// Build one code for prime `p`.
pub fn build(id: CodeId, p: usize) -> Result<CodeLayout, ConstructError> {
    match id {
        CodeId::Rdp => rdp(p),
        CodeId::HCode => hcode(p),
        CodeId::Hdp => hdp(p),
        CodeId::XCode => xcode(p),
        CodeId::DCode => dcode(p),
        CodeId::EvenOdd => evenodd(p),
        CodeId::PCode => pcode(p),
    }
}

/// Build every code in the workspace for prime `p`.
pub fn all_codes(p: usize) -> Vec<CodeLayout> {
    ALL_CODES
        .iter()
        .map(|&id| build(id, p).expect("all registry codes build for evaluated primes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::verify_mds;
    use dcode_core::PAPER_PRIMES;

    #[test]
    fn every_registered_code_is_mds_for_paper_primes() {
        for p in PAPER_PRIMES {
            for &id in &ALL_CODES {
                let layout = build(id, p).unwrap();
                verify_mds(&layout).unwrap_or_else(|v| {
                    panic!("{} (p={p}) failed MDS: {v}", id.name());
                });
            }
        }
    }

    #[test]
    fn disk_counts_match_the_paper() {
        // Section IV-A: RDP over p+1, H-Code over p+1, HDP over p−1,
        // X-Code over p (and D-Code over p).
        for p in PAPER_PRIMES {
            for &id in &ALL_CODES {
                let layout = build(id, p).unwrap();
                assert_eq!(layout.disks(), id.disks(p), "{}", id.name());
            }
        }
    }

    #[test]
    fn names_match() {
        for &id in &ALL_CODES {
            let layout = build(id, 7).unwrap();
            assert_eq!(layout.name(), id.name());
        }
    }

    #[test]
    fn storage_rate_is_optimal_everywhere() {
        for p in PAPER_PRIMES {
            for layout in all_codes(p) {
                assert!(
                    dcode_core::mds::storage_is_optimal(&layout),
                    "{} p={p}",
                    layout.name()
                );
            }
        }
    }
}
