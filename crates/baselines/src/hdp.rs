//! HDP — Horizontal-Diagonal Parity code (Wu et al., DSN'11) —
//! **reconstruction**.
//!
//! Like H-Code, the original paper is unavailable offline; this module
//! reconstructs HDP from its documented structure (DESIGN.md §5):
//!
//! * `p−1` disks (`p` prime), `p−1` rows — a square stripe;
//! * *horizontal-diagonal* parities on the main diagonal `(i, i)`, each the
//!   XOR of the other elements of row `i`;
//! * *anti-diagonal* parities on the anti-diagonal `(i, p−2−i)`, covering
//!   the cells of the mod-`p` anti-diagonal class `⟨r+c⟩ₚ = ⟨a·i + a−2⟩ₚ`
//!   (the `a−2` offset is the unique one making the image miss class `p−2`
//!   — which is exactly the anti-diagonal the parity positions themselves
//!   occupy, so the construction closes with no orphan cells);
//! * a parity-on-parity coupling (one family covers the other), which makes
//!   partial-stripe writes cascade — the behaviour behind HDP's high write
//!   cost in the D-Code paper's Figure 5;
//! * parities evenly distributed: every disk carries exactly one horizontal
//!   and one anti-diagonal parity;
//! * MDS for prime `p`.
//!
//! The crate's `reconstruct_search` binary scans the coupling and class-map
//! variants against the exhaustive MDS checker; [`hdp`] uses the pinned
//! winner.

use dcode_core::dcode::ConstructError;
use dcode_core::equation::EquationKind;
use dcode_core::grid::Cell;
use dcode_core::layout::{CodeLayout, LayoutBuilder};
use dcode_core::modmath::{is_prime, md};

/// Which parity family covers the other inside a row/diagonal.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Coupling {
    /// Horizontal parity (i,i) covers the anti-diagonal parity in its row;
    /// anti-diagonal equations cover data only.
    RowCoversAntiDiag,
    /// Anti-diagonal equations cover the horizontal parity cells on their
    /// class; horizontal parity covers data only.
    AntiDiagCoversRow,
    /// Both families cover data only (no parity-on-parity coupling).
    Independent,
}

/// Full parameterization of the reconstruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HdpVariant {
    /// Parity-on-parity coupling.
    pub coupling: Coupling,
    /// Class-map multiplier: anti-diagonal parity `i` covers class
    /// `⟨a·i + a − 2⟩ₚ`.
    pub a: usize,
}

/// The variant pinned by the reconstruction search (see the crate's
/// `reconstruct_search` binary): verified MDS for p ∈ {5, 7, 11, 13, 17},
/// with the cascading update behaviour the D-Code paper describes. The
/// search shows the construction is MDS exactly for the multipliers
/// `a ≡ −1` and `a ≡ (p−1)/2 (mod p)`, under the anti-diagonal-covers-row
/// coupling only; we pin `a = p−1`.
pub fn pinned_variant(p: usize) -> HdpVariant {
    HdpVariant {
        coupling: Coupling::AntiDiagCoversRow,
        a: p - 1,
    }
}

/// Build the HDP reconstruction with an explicit variant.
pub fn hdp_with_variant(p: usize, v: HdpVariant) -> Result<CodeLayout, ConstructError> {
    if !is_prime(p) {
        return Err(ConstructError::NotPrime(p));
    }
    if p < 5 {
        return Err(ConstructError::TooSmall(p));
    }
    let rows = p - 1;
    let mut b = LayoutBuilder::new("HDP", p, rows, rows);

    // Horizontal parities at (i, i).
    for i in 0..rows {
        let anti_pos = rows - 1 - i; // column of the anti-diagonal parity in row i
        let members: Vec<Cell> = (0..rows)
            .filter(|&c| c != i && (v.coupling == Coupling::RowCoversAntiDiag || c != anti_pos))
            .map(|c| Cell::new(i, c))
            .collect();
        b.equation(EquationKind::Row, Cell::new(i, i), members);
    }

    // Anti-diagonal parities at (i, p−2−i) covering class ⟨a·i + a−2⟩ₚ.
    // Class p−2 is exactly the anti-diagonal parity line, and the map's
    // image misses it, so members never include anti-diagonal parities.
    for i in 0..rows {
        let d = md((v.a * i + v.a) as i64 - 2, p);
        debug_assert_ne!(d, p - 2, "class map must avoid the parity line");
        let members: Vec<Cell> = (0..rows)
            .filter_map(|r| {
                let c = md(d as i64 - r as i64, p);
                if c > rows - 1 {
                    return None; // column p−1 does not exist in the square stripe
                }
                let cell = Cell::new(r, c);
                if r == c {
                    // The horizontal parity (r, r) lies on class ⟨2r⟩ₚ.
                    return (v.coupling == Coupling::AntiDiagCoversRow).then_some(cell);
                }
                Some(cell)
            })
            .collect();
        b.equation(
            EquationKind::AntiDiagonal,
            Cell::new(i, rows - 1 - i),
            members,
        );
    }

    // HDP's stripe mapping runs along wrapped diagonals: consecutive logical
    // elements step (+1, +1), landing in distinct rows *and* columns. This
    // reproduces the two behaviours the D-Code paper measures for HDP
    // simultaneously: partial-stripe writes share no parities (write cost
    // near X-Code's, Figure 5) while reads still spread evenly across disks
    // (read speed comparable per-disk, Figure 6). A row-major mapping would
    // contradict the paper's measured write cost — a row-parity code whose
    // continuous elements share row parities cannot cost as much as X-Code.
    let mut order = Vec::with_capacity(rows * (rows.saturating_sub(2)));
    for d in 0..rows {
        for r in 0..rows {
            let c = (r + d) % rows;
            let cell = Cell::new(r, c);
            if c != r && c != rows - 1 - r {
                order.push(cell);
            }
        }
    }
    b.with_logical_order(order);

    Ok(b.build().expect("HDP reconstruction is structurally valid"))
}

/// Build the pinned HDP reconstruction over `p−1` disks.
pub fn hdp(p: usize) -> Result<CodeLayout, ConstructError> {
    if p < 2 {
        return Err(ConstructError::TooSmall(p));
    }
    hdp_with_variant(p, pinned_variant(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::verify_mds;
    use dcode_core::metrics::update_complexity;
    use dcode_core::PAPER_PRIMES;

    #[test]
    fn pinned_variant_is_mds_for_paper_primes() {
        for p in PAPER_PRIMES {
            verify_mds(&hdp(p).unwrap()).unwrap();
        }
    }

    #[test]
    fn shape_and_even_distribution() {
        let l = hdp(7).unwrap();
        assert_eq!(l.disks(), 6);
        assert_eq!(l.rows(), 6);
        assert_eq!(l.data_len(), 24); // (p−1)(p−3)
        for c in 0..6 {
            assert_eq!(
                l.parity_count_in_col(c),
                2,
                "parities must be even per disk"
            );
        }
    }

    #[test]
    fn parity_positions() {
        let l = hdp(13).unwrap();
        for i in 0..12 {
            assert!(l.kind(Cell::new(i, i)).is_parity());
            assert!(l.kind(Cell::new(i, 11 - i)).is_parity());
        }
    }

    #[test]
    fn diagonal_stripe_mapping_disperses_consecutive_elements() {
        // HDP's logical order steps (+1, +1): consecutive elements land on
        // distinct disks AND distinct rows — the property that reproduces
        // the paper's measured write cost (no parity sharing) while keeping
        // reads spread (Figure 6).
        for p in [5usize, 7, 11] {
            let l = hdp(p).unwrap();
            for i in 0..l.data_len() - 1 {
                let a = l.logical_to_cell(i);
                let b = l.logical_to_cell(i + 1);
                assert_ne!(a.col, b.col, "p={p} i={i}");
            }
        }
    }

    #[test]
    fn consecutive_elements_rarely_share_parities() {
        // Direct parity sharing between adjacent logical elements is rare
        // (the cascade through horizontal parities adds occasional overlap,
        // but the X-Code-like write cost comes from the direct layer).
        let l = hdp(11).unwrap();
        let p = dcode_core::analysis::adjacent_sharing_probability(&l);
        assert!(p < 0.1, "adjacent sharing probability {p}");
    }

    #[test]
    fn update_complexity_exceeds_optimum() {
        // The parity coupling must make writes cascade (the D-Code paper's
        // Figure 5 shows HDP's write cost near X-Code's, well above RDP's).
        let (avg, max) = update_complexity(&hdp(11).unwrap());
        assert!(avg > 2.0, "avg update complexity {avg} should exceed 2");
        assert!(max >= 3);
    }
}
