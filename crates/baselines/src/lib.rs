#![warn(missing_docs)]
//! # dcode-baselines
//!
//! The RAID-6 MDS array codes the D-Code paper compares against, all
//! expressed as [`dcode_core::layout::CodeLayout`]s so they run through the
//! same generic encode/decode/simulation machinery as D-Code itself:
//!
//! * [`mod@rdp`] — Row-Diagonal Parity (FAST'04), the horizontal baseline;
//! * [`mod@evenodd`] — EVENODD (1995), bonus horizontal baseline;
//! * [`xcode`] — X-Code (1999), re-exported from `dcode-core` where it
//!   backs the Theorem-1 construction;
//! * [`mod@hcode`] — H-Code (IPDPS'11), reconstructed (DESIGN.md §5);
//! * [`mod@hdp`] — HDP (DSN'11), reconstructed (DESIGN.md §5);
//! * [`mod@pcode`] — P-Code, the pair-based vertical code (bonus baseline);
//! * [`registry`] — name-indexed access to every code, used by the figure
//!   binaries and examples;
//! * [`shortened`] — RDP/EVENODD shortened to arbitrary disk counts (the
//!   flexibility vertical codes like D-Code cannot offer).

pub mod evenodd;
pub mod hcode;
pub mod hdp;
pub mod pcode;
pub mod rdp;
pub mod registry;
pub mod shortened;

pub use dcode_core::dcode::{dcode, xcode};
pub use evenodd::evenodd;
pub use hcode::hcode;
pub use hdp::hdp;
pub use pcode::pcode;
pub use rdp::rdp;
pub use registry::{all_codes, build, CodeId, EVALUATED_CODES};
pub use shortened::{shortened_evenodd, shortened_rdp};
