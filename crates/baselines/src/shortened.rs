//! Code shortening: horizontal codes at arbitrary disk counts.
//!
//! Array codes come in prime-parameterized sizes, but real arrays have
//! whatever disk count the chassis holds. *Horizontal* codes (RDP,
//! EVENODD) shorten cleanly: build the code for the smallest admissible
//! prime, then declare the surplus data columns permanently zero and drop
//! them — every equation simply loses its references to the dropped
//! columns, and the code's distance is preserved (erasing columns of an
//! MDS code cannot reduce the minimum distance of the remainder).
//!
//! *Vertical* codes cannot be shortened this way: their parities live in
//! the very columns one would drop. This asymmetry is a genuine limitation
//! of D-Code/X-Code-style designs — they exist only at prime disk counts —
//! and this module makes the trade-off concrete in code: the library can
//! build an `n`-disk array for any `n ≥ 4` with `shortened_rdp`, but only
//! prime `n` with D-Code.

use dcode_core::dcode::ConstructError;
use dcode_core::grid::Cell;
use dcode_core::layout::{CodeLayout, LayoutBuilder};
use dcode_core::modmath::is_prime;

use crate::evenodd::evenodd;
use crate::rdp::rdp;

/// The smallest prime `p` such that the given code family spans at least
/// `disks` disks at parameter `p`.
fn smallest_prime_with(mut p: usize, ok: impl Fn(usize) -> bool) -> usize {
    loop {
        if is_prime(p) && ok(p) {
            return p;
        }
        p += 1;
    }
}

/// Drop the highest-numbered data columns of a horizontal layout until
/// `disks` columns remain. `parity_cols` counts the dedicated parity disks
/// kept at the end of the column range.
fn shorten(full: &CodeLayout, disks: usize, parity_cols: usize, name: &str) -> CodeLayout {
    let drop = full.disks() - disks; // data columns to remove
    let data_cols = full.disks() - parity_cols;
    let keep = |c: Cell| c.col < data_cols - drop || c.col >= data_cols;
    let remap = |c: Cell| {
        if c.col >= data_cols {
            Cell::new(c.row, c.col - drop)
        } else {
            c
        }
    };
    let mut b = LayoutBuilder::new(name, full.prime(), full.rows(), disks);
    for eq in full.equations() {
        debug_assert!(keep(eq.parity), "parity columns are never dropped");
        let members: Vec<Cell> = eq
            .members
            .iter()
            .copied()
            .filter(|&m| keep(m))
            .map(remap)
            .collect();
        if members.is_empty() {
            continue; // equation covered only dropped (zero) columns
        }
        b.equation(eq.kind, remap(eq.parity), members);
    }
    b.build().expect("shortening preserves structural validity")
}

/// RDP shortened to exactly `disks` disks (`disks − 2` data + 2 parity).
/// Valid for any `disks ≥ 4`.
pub fn shortened_rdp(disks: usize) -> Result<CodeLayout, ConstructError> {
    if disks < 4 {
        return Err(ConstructError::TooSmall(disks));
    }
    // RDP(p) spans p+1 disks with p−1 data disks: need p−1 ≥ disks−2.
    let p = smallest_prime_with(3, |p| p + 1 >= disks);
    let full = rdp(p)?;
    Ok(shorten(&full, disks, 2, "RDP*"))
}

/// EVENODD shortened to exactly `disks` disks (`disks − 2` data + 2
/// parity). Valid for any `disks ≥ 4`.
pub fn shortened_evenodd(disks: usize) -> Result<CodeLayout, ConstructError> {
    if disks < 4 {
        return Err(ConstructError::TooSmall(disks));
    }
    // EVENODD(p) spans p+2 disks with p data disks: need p ≥ disks−2.
    let p = smallest_prime_with(3, |p| p + 2 >= disks);
    let full = evenodd(p)?;
    Ok(shorten(&full, disks, 2, "EVENODD*"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::{verify_double_fault_tolerance, verify_single_fault_tolerance};

    #[test]
    fn shortened_rdp_is_two_fault_tolerant_at_every_size() {
        for disks in 4..=16 {
            let l = shortened_rdp(disks).unwrap();
            assert_eq!(l.disks(), disks);
            verify_single_fault_tolerance(&l).unwrap_or_else(|v| panic!("disks={disks}: {v}"));
            verify_double_fault_tolerance(&l).unwrap_or_else(|v| panic!("disks={disks}: {v}"));
        }
    }

    #[test]
    fn shortened_evenodd_is_two_fault_tolerant_at_every_size() {
        for disks in 4..=16 {
            let l = shortened_evenodd(disks).unwrap();
            assert_eq!(l.disks(), disks);
            verify_double_fault_tolerance(&l).unwrap_or_else(|v| panic!("disks={disks}: {v}"));
        }
    }

    #[test]
    fn exact_prime_sizes_match_unshortened_rdp() {
        // When disks = p+1 exactly, shortening drops nothing.
        let full = rdp(7).unwrap();
        let short = shortened_rdp(8).unwrap();
        assert_eq!(short.disks(), full.disks());
        assert_eq!(short.data_len(), full.data_len());
        assert_eq!(short.equations().len(), full.equations().len());
    }

    #[test]
    fn shortened_capacity_shrinks_with_disks() {
        let a = shortened_rdp(6).unwrap();
        let b = shortened_rdp(8).unwrap();
        assert!(a.data_len() < b.data_len());
        // Data fraction: (disks−2)/disks is no longer achieved exactly when
        // rows come from a larger prime — shortening trades capacity for
        // flexibility.
        assert_eq!(a.data_len(), a.rows() * (6 - 2));
    }

    #[test]
    fn roundtrip_through_the_codec() {
        use dcode_codec::{encode, recover_columns, Stripe};
        for disks in [5usize, 6, 9, 12] {
            let l = shortened_rdp(disks).unwrap();
            let payload: Vec<u8> = (0..l.data_len() * 16)
                .map(|i| (i * 29 % 251) as u8)
                .collect();
            let mut s = Stripe::from_data(&l, 16, &payload);
            encode(&l, &mut s);
            let golden = s.clone();
            for c1 in 0..disks {
                for c2 in c1 + 1..disks {
                    let mut broken = golden.clone();
                    recover_columns(&l, &mut broken, &[c1, c2]).unwrap();
                    assert_eq!(broken, golden, "disks={disks} ({c1},{c2})");
                }
            }
        }
    }

    #[test]
    fn tiny_arrays_rejected() {
        assert!(shortened_rdp(3).is_err());
        assert!(shortened_evenodd(2).is_err());
    }
}
