//! EVENODD (Blaum, Brady, Bruck & Menon, 1995).
//!
//! The original horizontal RAID-6 array code: `p+2` disks (`p` prime),
//! `p−1` rows. Disks `0..p` hold data (columns `0..p−1`), disk `p` holds row
//! parities, disk `p+1` holds diagonal parities. Every diagonal parity also
//! XORs in the *special diagonal* `S` (class `⟨r+c⟩ₚ = p−1`), which is why
//! EVENODD's update complexity is far from optimal — updating an S-diagonal
//! element dirties every diagonal parity.
//!
//! EVENODD is not part of the D-Code paper's measured comparison set, but it
//! is the ancestral horizontal code the paper discusses, and having it in
//! the registry exercises the generic machinery on a code whose equations
//! overlap heavily.

use dcode_core::dcode::ConstructError;
use dcode_core::equation::EquationKind;
use dcode_core::grid::Cell;
use dcode_core::layout::{CodeLayout, LayoutBuilder};
use dcode_core::modmath::{is_prime, md};

/// Build EVENODD over `p+2` disks.
pub fn evenodd(p: usize) -> Result<CodeLayout, ConstructError> {
    if !is_prime(p) {
        return Err(ConstructError::NotPrime(p));
    }
    if p < 3 {
        return Err(ConstructError::TooSmall(p));
    }
    let rows = p - 1;
    let mut b = LayoutBuilder::new("EVENODD", p, rows, p + 2);

    // Row parities: disk p covers all p data columns.
    for r in 0..rows {
        let members: Vec<Cell> = (0..p).map(|c| Cell::new(r, c)).collect();
        b.equation(EquationKind::Row, Cell::new(r, p), members);
    }

    // The special diagonal S: cells with ⟨r+c⟩ₚ = p−1 over the data columns.
    let s_cells: Vec<Cell> = (0..rows)
        .map(|r| Cell::new(r, md(p as i64 - 1 - r as i64, p)))
        .collect();

    // Diagonal parities: E(i, p+1) = S ⊕ (⊕ cells of diagonal i). S and
    // diagonal i are disjoint for i ≠ p−1, so the member list is the plain
    // union.
    for i in 0..rows {
        let mut members: Vec<Cell> = (0..rows)
            .map(|r| Cell::new(r, md(i as i64 - r as i64, p)))
            .collect();
        members.extend(s_cells.iter().copied());
        b.equation(EquationKind::Diagonal, Cell::new(i, p + 1), members);
    }

    Ok(b.build()
        .expect("EVENODD construction is structurally valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::verify_mds;
    use dcode_core::metrics::update_complexity;
    use dcode_core::PAPER_PRIMES;

    #[test]
    fn evenodd_is_mds_for_paper_primes() {
        for p in PAPER_PRIMES {
            verify_mds(&evenodd(p).unwrap()).unwrap();
        }
    }

    #[test]
    fn shape() {
        let l = evenodd(5).unwrap();
        assert_eq!(l.disks(), 7);
        assert_eq!(l.rows(), 4);
        assert_eq!(l.data_len(), 20);
        assert_eq!(l.parity_count_in_col(5), 4);
        assert_eq!(l.parity_count_in_col(6), 4);
    }

    #[test]
    fn s_diagonal_elements_have_huge_update_complexity() {
        let p = 7;
        let l = evenodd(p).unwrap();
        let (_, max) = update_complexity(&l);
        // An S-cell dirties its row parity + all p−1 diagonal parities.
        assert_eq!(max, p);
    }
}
