//! RDP — Row-Diagonal Parity (Corbett et al., FAST'04).
//!
//! The canonical *horizontal* RAID-6 code: `p+1` disks (`p` prime), `p−1`
//! rows. Disks `0..p−1` hold data, disk `p−1` holds row parities, disk `p`
//! holds diagonal parities. Diagonal `i` (`⟨r+c⟩ₚ = i`) covers both data and
//! *row-parity* elements — the reason RDP's update complexity exceeds the
//! optimum and one of the behaviours the D-Code paper's write-cost evaluation
//! leans on. Diagonal `p−1` is deliberately never stored (the "missing
//! diagonal" of the RDP construction).

use dcode_core::dcode::ConstructError;
use dcode_core::equation::EquationKind;
use dcode_core::grid::Cell;
use dcode_core::layout::{CodeLayout, LayoutBuilder};
use dcode_core::modmath::{is_prime, md};

/// Build RDP over `p+1` disks.
pub fn rdp(p: usize) -> Result<CodeLayout, ConstructError> {
    if !is_prime(p) {
        return Err(ConstructError::NotPrime(p));
    }
    if p < 3 {
        return Err(ConstructError::TooSmall(p));
    }
    let rows = p - 1;
    let mut b = LayoutBuilder::new("RDP", p, rows, p + 1);

    // Row parities: disk p−1.
    for r in 0..rows {
        let members: Vec<Cell> = (0..p - 1).map(|c| Cell::new(r, c)).collect();
        b.equation(EquationKind::Row, Cell::new(r, p - 1), members);
    }

    // Diagonal parities: disk p. Diagonal i covers cells (r, ⟨i−r⟩ₚ) for
    // r = 0..p−2 whose column lands inside 0..p−1 (columns 0..p−2 are data,
    // column p−1 is the row parity — both participate).
    for i in 0..rows {
        let members: Vec<Cell> = (0..rows)
            .filter_map(|r| {
                let c = md(i as i64 - r as i64, p);
                (c < p).then(|| Cell::new(r, c))
            })
            .collect();
        b.equation(EquationKind::Diagonal, Cell::new(i, p), members);
    }

    Ok(b.build().expect("RDP construction is structurally valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::mds::verify_mds;
    use dcode_core::metrics::{encode_xors_per_data_element, update_complexity};
    use dcode_core::PAPER_PRIMES;

    #[test]
    fn rdp_is_mds_for_paper_primes() {
        for p in PAPER_PRIMES {
            verify_mds(&rdp(p).unwrap()).unwrap();
        }
    }

    #[test]
    fn shape() {
        let l = rdp(7).unwrap();
        assert_eq!(l.disks(), 8);
        assert_eq!(l.rows(), 6);
        assert_eq!(l.data_len(), 36);
        // Dedicated parity disks: p−1 (row) and p (diagonal).
        assert_eq!(l.parity_count_in_col(6), 6);
        assert_eq!(l.parity_count_in_col(7), 6);
        for c in 0..6 {
            assert_eq!(l.parity_count_in_col(c), 0);
        }
    }

    #[test]
    fn diagonal_covers_row_parity_column() {
        // The defining RDP quirk: some diagonal equations include row-parity
        // elements, so updates cascade.
        let l = rdp(7).unwrap();
        let covers_parity = l
            .equations()
            .iter()
            .filter(|e| e.kind == EquationKind::Diagonal)
            .any(|e| e.members.iter().any(|m| m.col == 6));
        assert!(covers_parity);
        let (avg, max) = update_complexity(&l);
        assert!(avg > 2.0, "RDP update complexity should exceed the optimum");
        assert!(max >= 3);
    }

    #[test]
    fn encode_complexity_near_optimal() {
        // RDP is known to be encoding-optimal asymptotically; sanity-band.
        for p in PAPER_PRIMES {
            let x = encode_xors_per_data_element(&rdp(p).unwrap());
            assert!(x < 2.1, "p={p}: {x}");
        }
    }

    #[test]
    fn rejects_bad_p() {
        assert!(rdp(9).is_err());
        assert!(rdp(2).is_err());
    }
}
