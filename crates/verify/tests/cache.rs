//! Symbolic proofs for the schedule cache: the programs the cache hands
//! out are GF(2)-equivalent to the generator matrices, and steady-state
//! fetches are pointer-identical (no recompilation) — so the hot path's
//! correctness rests on exactly one verified compile per key.

use std::collections::BTreeSet;
use std::sync::Arc;

use dcode_baselines::registry::{build, ALL_CODES};
use dcode_codec::ScheduleCache;
use dcode_core::grid::Cell;
use dcode_verify::{verify_encode_program, verify_plan_program, verify_subprogram};

#[test]
fn cached_encode_programs_prove_equivalent_and_stable() {
    let cache = ScheduleCache::new();
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let program = cache.encode_program(&layout);
        let diags = verify_encode_program(&layout, &program);
        assert!(diags.is_empty(), "{} p=7: {diags:#?}", id.name());
        // A second fetch must be the very same compilation.
        let again = cache.encode_program(&layout);
        assert!(Arc::ptr_eq(&program, &again), "{} recompiled", id.name());
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, ALL_CODES.len() as u64);
    assert_eq!(stats.hits, ALL_CODES.len() as u64);
}

#[test]
fn cached_column_recoveries_prove_equivalent_and_stable() {
    let cache = ScheduleCache::new();
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let grid = layout.grid();
        for cols in [&[1usize][..], &[0, 2][..]] {
            let compiled = cache.column_program(&layout, cols).unwrap();
            let erased: BTreeSet<Cell> = cols.iter().flat_map(|&c| grid.column(c)).collect();
            let diags = verify_plan_program(&layout, &compiled.program, &erased);
            assert!(diags.is_empty(), "{} cols={cols:?}: {diags:#?}", id.name());
            let again = cache.column_program(&layout, cols).unwrap();
            assert!(
                Arc::ptr_eq(&compiled.program, &again.program),
                "{} cols={cols:?} recompiled",
                id.name()
            );
        }
    }
}

#[test]
fn cached_subprograms_prove_equivalent_and_stable() {
    // A degraded read of one lost column under a double erasure: starting
    // from an intended state with BOTH erased columns zeroed (what the
    // degraded array actually holds), the subprogram must restore exactly
    // the wanted cells and leave every survivor untouched. Cells of the
    // other erased column are unconstrained — the cache's optimizer
    // pipeline scratch-colors them, so they may end holding intermediates.
    let cache = ScheduleCache::new();
    for &id in &ALL_CODES {
        let layout = build(id, 7).unwrap();
        let grid = layout.grid();
        let cols = [0usize, 2];
        let missing: BTreeSet<Cell> = grid.column(0).collect();
        let erased: BTreeSet<Cell> = cols.iter().flat_map(|&c| grid.column(c)).collect();
        let compiled = cache
            .recovery_subprogram(&layout, cols.iter().copied(), &missing)
            .unwrap();
        let diags = verify_subprogram(&layout, &compiled.program, &erased, &missing);
        assert!(diags.is_empty(), "{} p=7: {diags:#?}", id.name());
        assert!(
            compiled.certificate.holds(),
            "{} subprogram certificate does not hold",
            id.name()
        );
        let again = cache
            .recovery_subprogram(&layout, cols.iter().copied(), &missing)
            .unwrap();
        assert!(
            Arc::ptr_eq(&compiled.program, &again.program),
            "{} subprogram recompiled",
            id.name()
        );
    }
}
