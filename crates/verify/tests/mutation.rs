//! Guarding the guard: corrupt valid compiled programs and prove the
//! verifier rejects every corruption class. A verifier that accepts
//! mutants would give exactly the false confidence this crate exists to
//! remove, so each injected fault must surface as at least one diagnostic
//! from the pass that owns it.

use dcode_codec::XorProgram;
use dcode_core::decoder::plan_column_recovery;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_verify::{check_levels, lint, verify_encode_program, verify_plan_program, DiagKind};
use std::collections::BTreeSet;

fn layouts() -> Vec<CodeLayout> {
    vec![
        dcode_core::dcode::dcode(7).unwrap(),
        dcode_core::dcode::xcode(7).unwrap(),
        dcode_baselines::rdp::rdp(7).unwrap(),
        dcode_baselines::evenodd::evenodd(5).unwrap(),
    ]
}

/// Rebuild a program with one field edited via the raw arrays.
fn mutate(
    prog: &XorProgram,
    f: impl FnOnce(&mut Vec<u32>, &mut Vec<u32>, &mut Vec<u32>, &mut Vec<u32>),
) -> XorProgram {
    let (mut targets, mut src_off, mut sources, mut level_off) = prog.raw_parts();
    f(&mut targets, &mut src_off, &mut sources, &mut level_off);
    XorProgram::from_raw_parts(prog.grid(), targets, src_off, sources, level_off)
}

#[test]
fn swapped_source_is_rejected() {
    for layout in layouts() {
        let prog = XorProgram::compile_encode(&layout);
        // Redirect op 0's first source to a different block: the symbolic
        // sum changes, so equivalence must flag the target.
        let original = prog.op_sources(0)[0];
        let replacement = (0..layout.grid().len() as u32)
            .find(|&b| {
                b != original && b != prog.op_target(0) as u32 && !prog.op_sources(0).contains(&b)
            })
            .expect("grid has a spare block");
        let mutant = mutate(&prog, |_, _, sources, _| sources[0] = replacement);
        let diags = verify_encode_program(&layout, &mutant);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::WrongSymbols { .. })),
            "{}: swapped source not caught: {diags:?}",
            layout.name()
        );
    }
}

#[test]
fn dropped_source_is_rejected() {
    for layout in layouts() {
        let prog = XorProgram::compile_encode(&layout);
        // Remove op 0's last source (shrink its src_off window; every later
        // offset shifts down by one).
        let mutant = mutate(&prog, |_, src_off, sources, _| {
            let cut = src_off[1] as usize - 1;
            sources.remove(cut);
            for off in src_off.iter_mut().skip(1) {
                *off -= 1;
            }
        });
        let diags = verify_encode_program(&layout, &mutant);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::WrongSymbols { .. })),
            "{}: dropped source not caught: {diags:?}",
            layout.name()
        );
    }
}

#[test]
fn duplicated_source_is_rejected() {
    for layout in layouts() {
        let prog = XorProgram::compile_encode(&layout);
        // Append a copy of op 0's first source: even multiplicity cancels
        // its contribution, so both the linter and equivalence must object.
        let mutant = mutate(&prog, |_, src_off, sources, _| {
            let dup = sources[0];
            sources.insert(src_off[1] as usize, dup);
            for off in src_off.iter_mut().skip(1) {
                *off += 1;
            }
        });
        let lints = lint(&mutant);
        assert!(
            lints
                .iter()
                .any(|d| matches!(d.kind, DiagKind::DuplicateSource { op: 0, .. })),
            "{}: duplicate source not linted: {lints:?}",
            layout.name()
        );
        let diags = verify_encode_program(&layout, &mutant);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::WrongSymbols { .. })),
            "{}: cancelled source not caught symbolically",
            layout.name()
        );
    }
}

#[test]
fn self_referencing_target_is_rejected() {
    for layout in layouts() {
        let prog = XorProgram::compile_encode(&layout);
        let target = prog.op_target(0) as u32;
        let mutant = mutate(&prog, |_, _, sources, _| sources[0] = target);
        let lints = lint(&mutant);
        assert!(
            lints
                .iter()
                .any(|d| matches!(d.kind, DiagKind::SelfReference { op: 0 })),
            "{}: self-reference not linted: {lints:?}",
            layout.name()
        );
    }
}

#[test]
fn op_moved_across_level_boundary_is_rejected() {
    // RDP's diagonal parity reads row parity, so its encode program has a
    // real dependency between level 0 and level 1. Shift the boundary so a
    // level-1 op (which reads level-0 targets) lands in level 0: now a
    // reader and its producer share a level — a read/write hazard.
    let layout = dcode_baselines::rdp::rdp(7).unwrap();
    let prog = XorProgram::compile_encode(&layout);
    assert!(prog.level_count() >= 2, "RDP must have dependent levels");
    let mutant = mutate(&prog, |_, _, _, level_off| level_off[1] += 1);
    let diags = check_levels(&mutant);
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ReadWriteHazard { level: 0, .. })),
        "moved op not caught as a hazard: {diags:?}"
    );
}

#[test]
fn op_delayed_into_a_late_level_is_flagged_non_minimal() {
    // The opposite boundary shift: an independent level-0 op pushed into
    // level 1. Nothing races, but the schedule now serializes more than
    // its dependencies require — the minimality lint owns this class.
    let layout = dcode_core::dcode::dcode(7).unwrap();
    let prog = XorProgram::compile_encode(&layout);
    assert_eq!(prog.level_count(), 1, "D-Code encode is a single level");
    let mutant = mutate(&prog, |targets, _, _, level_off| {
        // Split the single level so the last op sits alone in a new level.
        let boundary = targets.len() as u32 - 1;
        let end = level_off.pop().expect("level table non-empty");
        level_off.push(boundary);
        level_off.push(end);
    });
    let diags = lint(&mutant);
    assert!(
        diags.iter().any(|d| matches!(
            d.kind,
            DiagKind::HoistableOp {
                level: 1,
                earliest: 0,
                ..
            }
        )),
        "needless level not flagged: {diags:?}"
    );
}

#[test]
fn duplicate_target_in_a_level_is_rejected() {
    for layout in layouts() {
        let prog = XorProgram::compile_encode(&layout);
        let first = prog.op_target(0) as u32;
        // Make op 1 (same level as op 0 whenever the first level has ≥ 2
        // ops) write op 0's target.
        if prog.level_ops(0).len() < 2 {
            continue;
        }
        let mutant = mutate(&prog, |targets, _, _, _| targets[1] = first);
        let diags = check_levels(&mutant);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::WriteWriteHazard { level: 0, .. })),
            "{}: duplicate target not caught: {diags:?}",
            layout.name()
        );
    }
}

#[test]
fn out_of_range_reference_is_rejected() {
    let layout = dcode_core::dcode::dcode(5).unwrap();
    let prog = XorProgram::compile_encode(&layout);
    let beyond = layout.grid().len() as u32 + 3;
    let mutant = mutate(&prog, |_, _, sources, _| sources[0] = beyond);
    let diags = check_levels(&mutant);
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::OutOfRange { op: 0, .. })),
        "out-of-range source not caught: {diags:?}"
    );
    // Equivalence aborts on the same defect instead of panicking.
    let diags = verify_encode_program(&layout, &mutant);
    assert!(diags
        .iter()
        .any(|d| matches!(d.kind, DiagKind::OutOfRange { .. })));
}

#[test]
fn corrupted_recovery_program_is_rejected() {
    let layout = dcode_core::dcode::dcode(7).unwrap();
    let plan = plan_column_recovery(&layout, &[1, 4]).unwrap();
    let prog = XorProgram::compile_plan(layout.grid(), &plan);
    let erased: BTreeSet<Cell> = layout
        .grid()
        .column(1)
        .chain(layout.grid().column(4))
        .collect();
    assert!(verify_plan_program(&layout, &prog, &erased).is_empty());

    // Drop the final op: its target stays zeroed, so the plan no longer
    // restores the stripe.
    let mutant = mutate(&prog, |targets, src_off, sources, level_off| {
        targets.pop();
        let lo = src_off[src_off.len() - 2] as usize;
        sources.truncate(lo);
        src_off.pop();
        let ops = targets.len() as u32;
        for off in level_off.iter_mut() {
            *off = (*off).min(ops);
        }
        level_off.dedup();
        if level_off.len() == 1 {
            level_off.push(ops);
        }
    });
    let diags = verify_plan_program(&layout, &mutant, &erased);
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::WrongSymbols { .. })),
        "dropped recovery op not caught: {diags:?}"
    );
}

#[test]
fn dead_op_is_flagged() {
    let layout = dcode_core::dcode::dcode(5).unwrap();
    let prog = XorProgram::compile_encode(&layout);
    // Append a copy of the final op into a fresh level: the original
    // op's value is recomputed before anything reads it, so one of the
    // two writes is dead.
    let mutant = mutate(&prog, |targets, src_off, sources, level_off| {
        let last = targets.len() - 1;
        let (lo, hi) = (src_off[last] as usize, src_off[last + 1] as usize);
        let dup: Vec<u32> = sources[lo..hi].to_vec();
        targets.push(targets[last]);
        sources.extend(dup);
        src_off.push(sources.len() as u32);
        level_off.push(targets.len() as u32);
    });
    let diags = lint(&mutant);
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::DeadOp { .. })),
        "dead op not flagged: {diags:?}"
    );
}
