//! The PR's acceptance bar: every registry code at every evaluated prime
//! proves clean — MDS by rank, encode-program equivalence, hazard-free
//! levels, and symbolically-correct recovery for every 2-column erasure.

use dcode_baselines::registry::{build, ALL_CODES};
use dcode_verify::verify_layout;

/// The paper's primes plus one beyond (`17`), per the verification issue.
const VERIFIED_PRIMES: [usize; 5] = [5, 7, 11, 13, 17];

#[test]
fn every_registry_code_verifies_at_every_prime() {
    for p in VERIFIED_PRIMES {
        for &id in &ALL_CODES {
            let layout = build(id, p).unwrap();
            let report = verify_layout(&layout);
            assert!(
                report.is_clean(),
                "{} p={p}: {:#?}",
                id.name(),
                report.diagnostics
            );
            let pairs = layout.disks() * (layout.disks() - 1) / 2;
            assert_eq!(report.plans_verified, pairs, "{} p={p}", id.name());
            assert_eq!(report.encode_ops, layout.equations().len());
        }
    }
}
