//! The symbolic GF(2) domain.
//!
//! Every block in a stripe is modeled as an element of the vector space
//! GF(2)^d, where `d` is the layout's number of data symbols: the vector
//! records *which data elements are XORed into the block's current
//! contents*. Data element `j` starts as the unit vector `e_j`, parities
//! start at `0`, and every XOR over real byte blocks is mirrored exactly by
//! vector addition over GF(2) — XOR is linear and the codec never does
//! anything but XOR. A claim proved in this domain therefore holds for
//! *every* payload and *every* block size at once, which is what lets the
//! verifier replace sampled byte-level testing with proof.

use std::fmt;

/// One symbolic block value: a bit-vector over the stripe's data symbols.
/// Bit `j` set means data element `j` (in the layout's logical order)
/// contributes to the block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymVec {
    dim: usize,
    words: Vec<u64>,
}

impl SymVec {
    /// The zero vector of dimension `dim` (an erased or unwritten block).
    pub fn zero(dim: usize) -> Self {
        SymVec {
            dim,
            words: vec![0; dim.div_ceil(64).max(1)],
        }
    }

    /// The unit vector `e_j` (a pristine data block holding element `j`).
    pub fn unit(dim: usize, j: usize) -> Self {
        assert!(j < dim, "symbol {j} outside dimension {dim}");
        let mut v = SymVec::zero(dim);
        v.words[j / 64] |= 1 << (j % 64);
        v
    }

    /// Dimension of the symbol space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether symbol `j` contributes.
    pub fn get(&self, j: usize) -> bool {
        debug_assert!(j < self.dim);
        self.words[j / 64] >> (j % 64) & 1 == 1
    }

    /// Toggle symbol `j`'s contribution.
    pub fn toggle(&mut self, j: usize) {
        debug_assert!(j < self.dim);
        self.words[j / 64] ^= 1 << (j % 64);
    }

    /// GF(2) addition: `self ^= other`. Mirrors XORing two byte blocks.
    pub fn xor_assign(&mut self, other: &SymVec) {
        debug_assert_eq!(self.dim, other.dim, "mixed symbol spaces");
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d ^= s;
        }
    }

    /// Whether no symbol contributes (the all-zero block).
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of contributing symbols (the XOR fan-in from data).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The contributing symbol indices, ascending. This is the
    /// machine-readable form carried by equivalence diagnostics.
    pub fn symbols(&self) -> Vec<usize> {
        (0..self.dim).filter(|&j| self.get(j)).collect()
    }
}

impl fmt::Display for SymVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        for (i, j) in self.symbols().into_iter().enumerate() {
            if i > 0 {
                f.write_str("^")?;
            }
            write!(f, "d{j}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_vectors_are_orthogonal_symbols() {
        let a = SymVec::unit(100, 3);
        let b = SymVec::unit(100, 99);
        assert!(a.get(3) && !a.get(99));
        assert!(b.get(99));
        assert_eq!(a.weight(), 1);
    }

    #[test]
    fn xor_cancels_pairs() {
        let mut v = SymVec::unit(10, 2);
        v.xor_assign(&SymVec::unit(10, 5));
        assert_eq!(v.symbols(), vec![2, 5]);
        v.xor_assign(&SymVec::unit(10, 2));
        assert_eq!(v.symbols(), vec![5]);
        v.xor_assign(&SymVec::unit(10, 5));
        assert!(v.is_zero());
    }

    #[test]
    fn display_is_readable() {
        let mut v = SymVec::unit(8, 1);
        v.toggle(6);
        assert_eq!(v.to_string(), "d1^d6");
        assert_eq!(SymVec::zero(8).to_string(), "0");
    }
}
