//! Fused-batch equivalence: prove a [`FusedProgram`] over batch `B` is
//! *exactly* `B` independent copies of the layout's single-stripe
//! generator — the property that makes the bulk encoder's fused fast
//! path safe to ship.
//!
//! The symbol space is widened to `B × data_len`: stripe `s`'s data
//! element `j` is the unit vector `e_{s·data_len + j}`, so any
//! cross-stripe contamination — an op reading a neighbouring stripe's
//! block — is visible as foreign symbols in the final state, for every
//! payload and block size at once. On top of the equivalence proof, a
//! structural pass checks *stripe confinement* directly: every op in
//! stripe `s`'s segment of a level may only touch blocks in stripe `s`'s
//! virtual range. That catches even self-cancelling cross-stripe reads
//! (an even multiplicity of a foreign block XORs to nothing and would
//! slip past the equivalence check), and it is what makes the tile-major
//! executor's per-stripe replay legal in the first place.

use crate::diag::{DiagKind, Diagnostic};
use crate::sym::SymVec;
use dcode_codec::{generator_matrix, FusedProgram, XorProgram};
use dcode_core::decoder::plan_column_recovery;
use dcode_core::grid::{Cell, CellKind};
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;

/// The intended post-encode symbolic state of the whole batch, indexed by
/// virtual block `s·grid.len() + grid.index(cell)`: stripe-shifted unit
/// vectors on data cells, stripe-shifted generator rows on parity cells.
fn intended_batch_state(layout: &CodeLayout, batch: usize) -> Vec<SymVec> {
    let grid = layout.grid();
    let data_len = layout.data_len();
    let dim = batch * data_len;
    let matrix = generator_matrix(layout);
    let mut out = Vec::with_capacity(batch * grid.len());
    for s in 0..batch {
        let base = s * data_len;
        for cell in grid.cells() {
            out.push(match layout.kind(cell) {
                CellKind::Data => SymVec::unit(
                    dim,
                    base + layout
                        .logical_of(cell)
                        .expect("data cell has logical index"),
                ),
                CellKind::Parity(eq) => {
                    let mut v = SymVec::zero(dim);
                    for j in 0..data_len {
                        if matrix.get(eq, j) {
                            v.toggle(base + j);
                        }
                    }
                    v
                }
            });
        }
    }
    out
}

/// Pass 1 of every fused proof: stripe confinement. Position within a
/// level determines the owning stripe (the fuser emits levels
/// stripe-major), so every block index the op touches must fall in that
/// stripe's virtual range.
fn confinement_diags(fused: &FusedProgram) -> Vec<Diagnostic> {
    let gl = fused.grid().len();
    let batch = fused.batch();
    let mut diags = Vec::new();
    for lv in 0..fused.level_count() {
        let ops = fused.level_ops(lv);
        if ops.is_empty() {
            continue;
        }
        let per_stripe = ops.len() / batch;
        for (k, op) in ops.enumerate() {
            let stripe = k / per_stripe;
            let (lo, hi) = (stripe * gl, (stripe + 1) * gl);
            let target = fused.op_target(op);
            if !(lo..hi).contains(&target) {
                diags.push(Diagnostic::error(DiagKind::CrossStripe {
                    op,
                    stripe,
                    block: target,
                }));
            }
            for &src in fused.op_sources(op) {
                let src = src as usize;
                if !(lo..hi).contains(&src) {
                    diags.push(Diagnostic::error(DiagKind::CrossStripe {
                        op,
                        stripe,
                        block: src,
                    }));
                }
            }
        }
    }
    diags
}

/// Pass 2 of every fused proof: symbolic replay over the widened symbol
/// space, mirroring the executor's sequential overwrite semantics (ops
/// in level order; within a level the order is immaterial by
/// hazard-freedom of the underlying single-stripe program plus stripe
/// disjointness). Returns `false` and appends an [`DiagKind::OutOfRange`]
/// diagnostic if the replay had to abort — a structurally broken program
/// proves nothing.
fn replay_fused(fused: &FusedProgram, state: &mut [SymVec], diags: &mut Vec<Diagnostic>) -> bool {
    let total = state.len();
    let dim = state.first().map_or(0, SymVec::dim);
    for op in 0..fused.op_count() {
        let target = fused.op_target(op);
        if target >= total {
            diags.push(Diagnostic::error(DiagKind::OutOfRange {
                op,
                block: target,
            }));
            return false;
        }
        let mut acc = SymVec::zero(dim);
        for &src in fused.op_sources(op) {
            let src = src as usize;
            if src >= total {
                diags.push(Diagnostic::error(DiagKind::OutOfRange { op, block: src }));
                return false;
            }
            acc.xor_assign(&state[src]);
        }
        state[target] = acc;
    }
    true
}

/// Pass 3 of every fused proof: the final state must equal B shifted
/// copies of the generator's intended state.
fn compare_to_intended_batch(
    layout: &CodeLayout,
    batch: usize,
    state: &[SymVec],
    diags: &mut Vec<Diagnostic>,
) {
    let grid = layout.grid();
    let gl = grid.len();
    let intended = intended_batch_state(layout, batch);
    for s in 0..batch {
        for cell in grid.cells() {
            let v = s * gl + grid.index(cell);
            if state[v] != intended[v] {
                diags.push(Diagnostic::error(DiagKind::FusedWrongSymbols {
                    stripe: s,
                    cell,
                    expected: intended[v].symbols(),
                    actual: state[v].symbols(),
                }));
            }
        }
    }
}

/// Prove `fused` is a correct batch encode for `layout`: stripe
/// confinement, then symbolic replay from pristine per-stripe data, then
/// comparison against [`intended_batch_state`]. Empty result = proved for
/// every payload, block size, and tile size (the executor's tile loop
/// only re-orders byte ranges of the same op sequence, and XOR is
/// elementwise).
pub fn verify_fused_program(layout: &CodeLayout, fused: &FusedProgram) -> Vec<Diagnostic> {
    assert_eq!(
        fused.grid(),
        layout.grid(),
        "fused program compiled for a different grid"
    );
    let grid = layout.grid();
    let batch = fused.batch();
    let data_len = layout.data_len();
    let dim = batch * data_len;

    let mut diags = confinement_diags(fused);

    // Initial state: pristine per-stripe data, zeroed parity.
    let mut state: Vec<SymVec> = Vec::with_capacity(batch * grid.len());
    for s in 0..batch {
        for cell in grid.cells() {
            state.push(match layout.logical_of(cell) {
                Some(j) => SymVec::unit(dim, s * data_len + j),
                None => SymVec::zero(dim),
            });
        }
    }
    if !replay_fused(fused, &mut state, &mut diags) {
        return diags;
    }
    compare_to_intended_batch(layout, batch, &state, &mut diags);
    diags
}

/// Prove `fused` is a correct batch *recovery* for the erasure of
/// `erased` cells in every stripe of the batch: starting from B shifted
/// copies of the intended encoded state with each stripe's erased blocks
/// zeroed (exactly what a batch of degraded stripes holds), replay must
/// restore every erased block and leave every survivor untouched, with
/// no op ever reaching across a stripe boundary. Empty result = proved
/// for every payload, block size, and tile size.
pub fn verify_fused_plan(
    layout: &CodeLayout,
    fused: &FusedProgram,
    erased: &BTreeSet<Cell>,
) -> Vec<Diagnostic> {
    assert_eq!(
        fused.grid(),
        layout.grid(),
        "fused program compiled for a different grid"
    );
    let grid = layout.grid();
    let gl = grid.len();
    let batch = fused.batch();
    let dim = batch * layout.data_len();

    let mut diags = confinement_diags(fused);

    let mut state = intended_batch_state(layout, batch);
    for s in 0..batch {
        for &cell in erased {
            state[s * gl + grid.index(cell)] = SymVec::zero(dim);
        }
    }
    if !replay_fused(fused, &mut state, &mut diags) {
        return diags;
    }
    compare_to_intended_batch(layout, batch, &state, &mut diags);
    diags
}

/// Plan the recovery of `cols`, compile it, fuse it at `batch`, and
/// prove the result with [`verify_fused_plan`] — the form
/// `verify_layout` and the CLI drive. A planner refusal surfaces as a
/// [`DiagKind::PlanFailed`] diagnostic rather than a panic, so callers
/// can probe erasures without pre-checking recoverability.
pub fn verify_fused_recovery(layout: &CodeLayout, cols: &[usize], batch: usize) -> Vec<Diagnostic> {
    let plan = match plan_column_recovery(layout, cols) {
        Ok(plan) => plan,
        Err(e) => {
            return vec![Diagnostic::error(DiagKind::PlanFailed {
                failed: cols.to_vec(),
                reason: e.to_string(),
            })]
        }
    };
    let grid = layout.grid();
    let single = XorProgram::compile_plan(grid, &plan);
    let fused = FusedProgram::fuse(&single, batch);
    let erased: BTreeSet<Cell> = cols.iter().flat_map(|&c| grid.column(c)).collect();
    verify_fused_plan(layout, &fused, &erased)
}

/// Fuse the layout's compiled encode program at `batch` and prove it —
/// the form `verify_layout` and the CLI drive.
pub fn verify_fused_encode(layout: &CodeLayout, batch: usize) -> Vec<Diagnostic> {
    let single = XorProgram::compile_encode(layout);
    verify_fused_program(layout, &FusedProgram::fuse(&single, batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;

    #[test]
    fn fused_encode_proves_equivalent_for_every_code_and_prime() {
        // The ISSUE's acceptance grid: all registry codes, p ∈ {5,7,11,13},
        // a couple of batch shapes each.
        for p in [5usize, 7, 11, 13] {
            for layout in all_codes(p) {
                for batch in [1usize, 3] {
                    let diags = verify_fused_encode(&layout, batch);
                    assert!(
                        diags.is_empty(),
                        "{} p={p} batch={batch}: {diags:?}",
                        layout.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_recovery_proves_equivalent_for_every_code_and_pair() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                for cols in [[0usize, 1], [1, 3]] {
                    if plan_column_recovery(&layout, &cols).is_err() {
                        continue; // baseline codes that don't cover this pair
                    }
                    for batch in [1usize, 3] {
                        let diags = verify_fused_recovery(&layout, &cols, batch);
                        assert!(
                            diags.is_empty(),
                            "{} p={p} cols={cols:?} batch={batch}: {diags:?}",
                            layout.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_recovery_of_unrecoverable_erasure_reports_plan_failure() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let diags = verify_fused_recovery(&layout, &[0, 1, 2], 2);
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::PlanFailed { .. })));
    }

    #[test]
    fn fused_plan_catches_a_dropped_recovery_operand() {
        // Mutation self-test: drop the last operand of the final op of a
        // fused recovery program. Every value read at the final level is
        // symbolically nonzero (survivors and already-restored blocks),
        // so the op's result — and the block it leaves behind — must
        // change, and the equivalence pass must say so.
        let layout = dcode_core::dcode::dcode(5).unwrap();
        let plan = plan_column_recovery(&layout, &[0, 1]).unwrap();
        let single = XorProgram::compile_plan(layout.grid(), &plan);
        let fused = FusedProgram::fuse(&single, 2);
        let (targets, mut src_off, mut sources, level_off) = fused.raw_parts();
        let last = targets.len();
        assert!(
            src_off[last] - src_off[last - 1] >= 2,
            "recovery ops gather at least two blocks"
        );
        sources.pop();
        src_off[last] -= 1;
        let mutant = FusedProgram::from_raw_parts(
            fused.batch(),
            fused.grid(),
            targets,
            src_off,
            sources,
            level_off,
        );
        let erased: BTreeSet<Cell> = layout
            .grid()
            .column(0)
            .chain(layout.grid().column(1))
            .collect();
        let diags = verify_fused_plan(&layout, &mutant, &erased);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::FusedWrongSymbols { .. })),
            "a dropped op must leave a block at the wrong value: {diags:?}"
        );
    }

    #[test]
    fn cross_stripe_index_swap_is_caught() {
        // Mutation self-test: shift one source of a stripe-1 op down into
        // stripe 0's virtual range. Both the confinement pass and the
        // equivalence pass must object.
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let single = XorProgram::compile_encode(&layout);
        let fused = FusedProgram::fuse(&single, 2);
        let gl = layout.grid().len() as u32;
        let batch = fused.batch();
        let grid = fused.grid();
        let (targets, src_off, mut sources, level_off) = fused.raw_parts();
        // Find a source belonging to stripe 1 and pull it into stripe 0.
        let victim = sources
            .iter()
            .position(|&s| s >= gl)
            .expect("batch 2 has stripe-1 sources");
        sources[victim] -= gl;
        let mutant =
            FusedProgram::from_raw_parts(batch, grid, targets, src_off, sources, level_off);
        let diags = verify_fused_program(&layout, &mutant);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::CrossStripe { .. })),
            "confinement pass must flag the swap: {diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::FusedWrongSymbols { .. })),
            "equivalence pass must flag the swap: {diags:?}"
        );
    }

    #[test]
    fn self_cancelling_cross_stripe_read_still_caught_by_confinement() {
        // Append a foreign block twice to one op's source list: the XOR
        // cancels, so the equivalence pass stays silent — confinement is
        // the pass that must catch it.
        let layout = dcode_core::dcode::dcode(5).unwrap();
        let single = XorProgram::compile_encode(&layout);
        let fused = FusedProgram::fuse(&single, 2);
        let gl = layout.grid().len() as u32;
        let (targets, mut src_off, mut sources, level_off) = fused.raw_parts();
        // Op 0 belongs to stripe 0; give it a stripe-1 block twice.
        let insert_at = src_off[1] as usize;
        sources.insert(insert_at, gl);
        sources.insert(insert_at, gl);
        for off in src_off.iter_mut().skip(1) {
            *off += 2;
        }
        let mutant = FusedProgram::from_raw_parts(
            fused.batch(),
            fused.grid(),
            targets,
            src_off,
            sources,
            level_off,
        );
        let diags = verify_fused_program(&layout, &mutant);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::CrossStripe { .. })),
            "self-cancelling foreign reads must still be flagged: {diags:?}"
        );
        assert!(
            !diags
                .iter()
                .any(|d| matches!(d.kind, DiagKind::FusedWrongSymbols { .. })),
            "the cancelled pair must not corrupt the final state: {diags:?}"
        );
    }
}
