//! Equivalence proof for optimizer input/output pairs.
//!
//! The codec's optimizer ([`dcode_codec::opt`]) checks its own rewrites
//! internally; this module is the *independent* proof the verify crate
//! contributes: replay both programs symbolically over a **fully generic
//! initial state** — block *i* starts as the formal symbol *eᵢ*, nothing
//! is assumed encoded — and require the designated output blocks to end
//! with identical GF(2) combinations. Because XOR programs are linear,
//! agreeing on every generic symbol is agreeing on every possible stripe
//! content, so this is sound and complete. On top of the equivalence
//! proof, the pass re-measures both programs and reports any cost metric
//! that regressed ([`DiagKind::CostRegression`]), making the optimizer's
//! monotonicity obligation independently checkable too.

use crate::diag::{DiagKind, Diagnostic};
use crate::equiv::run_symbolic;
use crate::sym::SymVec;
use dcode_codec::opt::CostSummary;
use dcode_codec::XorProgram;
use std::collections::BTreeSet;

/// Prove `optimized` equivalent to `original` on every block of
/// `outputs` (linear indices), over a fully generic initial state, and
/// check cost monotonicity. Structural problems in either program
/// (out-of-range indices) abort with those diagnostics instead.
///
/// Empty result = proven: same grid, same output semantics for every
/// possible initial stripe content, and no metric got worse.
pub fn verify_optimized_pair(
    original: &XorProgram,
    optimized: &XorProgram,
    outputs: &BTreeSet<usize>,
) -> Vec<Diagnostic> {
    assert_eq!(
        original.grid(),
        optimized.grid(),
        "optimized pair must share a grid"
    );
    let dim = original.grid().len();
    let generic_final = |program: &XorProgram| -> Result<Vec<SymVec>, Vec<Diagnostic>> {
        let mut state: Vec<SymVec> = (0..dim).map(|i| SymVec::unit(dim, i)).collect();
        let diags = run_symbolic(program, &mut state);
        if diags.is_empty() {
            Ok(state)
        } else {
            Err(diags)
        }
    };
    let state_a = match generic_final(original) {
        Ok(s) => s,
        Err(d) => return d,
    };
    let state_b = match generic_final(optimized) {
        Ok(s) => s,
        Err(d) => return d,
    };
    let mut out = Vec::new();
    for &block in outputs {
        if state_a[block] != state_b[block] {
            out.push(Diagnostic::error(DiagKind::OptimizedDiverges {
                block,
                expected: state_a[block].symbols(),
                actual: state_b[block].symbols(),
            }));
        }
    }
    let outputs32: BTreeSet<u32> = outputs.iter().map(|&o| o as u32).collect();
    let before = CostSummary::measure(original, &outputs32);
    let after = CostSummary::measure(optimized, &outputs32);
    for (metric, b, a) in [
        ("ops", before.ops, after.ops),
        ("xors", before.xors, after.xors),
        ("reads", before.reads, after.reads),
        ("levels", before.levels, after.levels),
        ("scratch", before.scratch_blocks, after.scratch_blocks),
    ] {
        if a > b {
            out.push(Diagnostic::error(DiagKind::CostRegression {
                metric,
                before: b,
                after: a,
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_codec::opt::{optimize, OptConfig};
    use dcode_core::grid::Grid;

    fn toy(targets: Vec<u32>, srcs: Vec<Vec<u32>>, level_off: Vec<u32>) -> XorProgram {
        let mut src_off = vec![0u32];
        let mut sources = Vec::new();
        for s in srcs {
            sources.extend_from_slice(&s);
            src_off.push(sources.len() as u32);
        }
        XorProgram::from_raw_parts(Grid::new(4, 4), targets, src_off, sources, level_off)
    }

    #[test]
    fn identical_programs_verify() {
        let p = toy(vec![12], vec![vec![0, 1]], vec![0, 1]);
        assert!(verify_optimized_pair(&p, &p, &BTreeSet::from([12])).is_empty());
    }

    #[test]
    fn scratch_renaming_verifies_but_output_change_does_not() {
        // Same value routed through a different scratch block: equivalent.
        let a = toy(vec![5, 12], vec![vec![0, 1], vec![5, 2]], vec![0, 1, 2]);
        let b = toy(vec![6, 12], vec![vec![0, 1], vec![6, 2]], vec![0, 1, 2]);
        assert!(verify_optimized_pair(&a, &b, &BTreeSet::from([12])).is_empty());
        // A dropped operand on the output: must diverge.
        let c = toy(vec![6, 12], vec![vec![0, 1], vec![6]], vec![0, 1, 2]);
        let diags = verify_optimized_pair(&a, &c, &BTreeSet::from([12]));
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::OptimizedDiverges { block: 12, .. })));
    }

    #[test]
    fn cost_regressions_are_reported() {
        let a = toy(vec![12], vec![vec![0, 1]], vec![0, 1]);
        // Equivalent but with a gratuitous extra level and scratch copy.
        let b = toy(vec![5, 12], vec![vec![0, 1], vec![5]], vec![0, 1, 2]);
        let diags = verify_optimized_pair(&a, &b, &BTreeSet::from([12]));
        assert!(diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::CostRegression { metric: "ops", .. })));
        assert!(!diags
            .iter()
            .any(|d| matches!(d.kind, DiagKind::OptimizedDiverges { .. })));
    }

    #[test]
    fn real_optimizer_output_proves_out() {
        // A padded program through the full pipeline, verified by the
        // independent symbolic pass.
        let p = toy(
            vec![5, 11, 12, 6, 13],
            vec![vec![0, 1], vec![2, 3], vec![5, 2], vec![0, 3], vec![6, 1]],
            vec![0, 2, 3, 4, 5],
        );
        let outputs = BTreeSet::from([12usize, 13]);
        let opt = optimize(&p, Some(&outputs), &OptConfig::full());
        assert!(opt.certificate.holds());
        assert!(verify_optimized_pair(&p, &opt.program, &outputs).is_empty());
    }
}
