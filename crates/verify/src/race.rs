//! Static race checking for dependency levels.
//!
//! [`XorProgram::run_parallel`] detaches every target of a level and lets
//! worker threads compute them concurrently against the rest of the stripe
//! read-only. That is data-race-free under exactly two conditions, both
//! decidable from the program text alone:
//!
//! 1. no two ops of one level write the same block (write/write), and
//! 2. no op reads a block another op of the same level writes
//!    (read/write — with detachment this is not just a race but a read of
//!    an empty placeholder, which panics).
//!
//! [`check_levels`] proves both, plus index bounds, making parallel replay
//! safe *by construction* for any program that passes.

use crate::diag::{DiagKind, Diagnostic};
use dcode_codec::XorProgram;
use std::collections::BTreeMap;

/// Prove every dependency level of `program` hazard-free. Returns one
/// diagnostic per violation; an empty vector is the proof.
pub fn check_levels(program: &XorProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n_blocks = program.grid().len();
    for lv in 0..program.level_count() {
        let ops = program.level_ops(lv);
        // Who writes what in this level (first writer wins the map slot).
        let mut writer_of: BTreeMap<usize, usize> = BTreeMap::new();
        for op in ops.clone() {
            let t = program.op_target(op);
            if t >= n_blocks {
                out.push(Diagnostic::error(DiagKind::OutOfRange { op, block: t }));
                continue;
            }
            if let Some(&first_op) = writer_of.get(&t) {
                out.push(Diagnostic::error(DiagKind::WriteWriteHazard {
                    level: lv,
                    first_op,
                    second_op: op,
                    block: t,
                }));
            } else {
                writer_of.insert(t, op);
            }
        }
        for op in ops {
            for &s in program.op_sources(op) {
                let s = s as usize;
                if s >= n_blocks {
                    out.push(Diagnostic::error(DiagKind::OutOfRange { op, block: s }));
                    continue;
                }
                match writer_of.get(&s) {
                    // A read of the op's own target is reported by the
                    // linter as a self-reference; here we flag only
                    // cross-op hazards.
                    Some(&writer_op) if writer_op != op => {
                        out.push(Diagnostic::error(DiagKind::ReadWriteHazard {
                            level: lv,
                            reader_op: op,
                            writer_op,
                            block: s,
                        }));
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::decoder::plan_column_recovery;

    #[test]
    fn compiled_programs_are_hazard_free() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let prog = XorProgram::compile_encode(&layout);
                assert!(check_levels(&prog).is_empty(), "{} p={p}", layout.name());
                for c1 in 0..layout.disks() {
                    for c2 in c1 + 1..layout.disks() {
                        let plan = plan_column_recovery(&layout, &[c1, c2]).unwrap();
                        let prog = XorProgram::compile_plan(layout.grid(), &plan);
                        assert!(
                            check_levels(&prog).is_empty(),
                            "{} p={p} cols=({c1},{c2})",
                            layout.name()
                        );
                    }
                }
            }
        }
    }
}
