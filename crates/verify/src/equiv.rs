//! Symbolic equivalence: prove a compiled program computes exactly what
//! the layout's GF(2) equations demand.
//!
//! The verifier replays a program over [`SymVec`] block values instead of
//! bytes, mirroring the executor's semantics precisely: each op *overwrites*
//! its target with the XOR of its sources (the gather kernel copies the
//! first source, then accumulates — the target's prior value never
//! contributes). Because XOR on byte blocks is GF(2)-linear, the symbolic
//! final state equals the byte-level final state for every payload; agreement
//! with the intended state is therefore a proof, not a test.
//!
//! The *intended* state comes from
//! [`dcode_codec::bitmatrix::generator_matrix`], which expands every parity
//! into pure data-symbol form in encode order — the same ground truth the
//! byte-level cross-check tests against.

use crate::diag::{DiagKind, Diagnostic};
use crate::sym::SymVec;
use dcode_codec::{generator_matrix, XorProgram};
use dcode_core::grid::{Cell, CellKind};
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;

/// The value every block must hold in a fully-encoded stripe: unit vectors
/// on data cells, the generator-matrix row on parity cells. Indexed by
/// linear grid index.
pub fn intended_state(layout: &CodeLayout) -> Vec<SymVec> {
    let grid = layout.grid();
    let dim = layout.data_len();
    let matrix = generator_matrix(layout);
    grid.cells()
        .map(|cell| match layout.kind(cell) {
            CellKind::Data => SymVec::unit(
                dim,
                layout
                    .logical_of(cell)
                    .expect("data cell has logical index"),
            ),
            CellKind::Parity(eq) => {
                let mut v = SymVec::zero(dim);
                for j in 0..dim {
                    if matrix.get(eq, j) {
                        v.toggle(j);
                    }
                }
                v
            }
        })
        .collect()
}

/// Replay `program` symbolically from `state` (indexed by linear grid
/// index), mirroring [`XorProgram::run`]'s sequential overwrite semantics.
/// Out-of-range references abort the replay and are returned as
/// diagnostics — a structurally broken program proves nothing.
pub fn run_symbolic(program: &XorProgram, state: &mut [SymVec]) -> Vec<Diagnostic> {
    let dim = state.first().map_or(0, SymVec::dim);
    for op in 0..program.op_count() {
        let target = program.op_target(op);
        if target >= state.len() {
            return vec![Diagnostic::error(DiagKind::OutOfRange {
                op,
                block: target,
            })];
        }
        let mut acc = SymVec::zero(dim);
        for &s in program.op_sources(op) {
            let s = s as usize;
            if s >= state.len() {
                return vec![Diagnostic::error(DiagKind::OutOfRange { op, block: s })];
            }
            acc.xor_assign(&state[s]);
        }
        state[target] = acc;
    }
    Vec::new()
}

fn compare_to_intended(
    layout: &CodeLayout,
    state: &[SymVec],
    intended: &[SymVec],
) -> Vec<Diagnostic> {
    let grid = layout.grid();
    grid.cells()
        .filter(|&cell| state[grid.index(cell)] != intended[grid.index(cell)])
        .map(|cell| {
            Diagnostic::error(DiagKind::WrongSymbols {
                cell,
                expected: intended[grid.index(cell)].symbols(),
                actual: state[grid.index(cell)].symbols(),
            })
        })
        .collect()
}

/// Prove `program` is a correct full-stripe encode for `layout`: starting
/// from pristine data and zeroed parity, sequential replay must leave
/// every block at its intended value. Empty result = proved, for every
/// payload and block size.
pub fn verify_encode_program(layout: &CodeLayout, program: &XorProgram) -> Vec<Diagnostic> {
    assert_eq!(
        program.grid(),
        layout.grid(),
        "program compiled for a different grid"
    );
    let grid = layout.grid();
    let dim = layout.data_len();
    let mut state: Vec<SymVec> = grid
        .cells()
        .map(|cell| match layout.logical_of(cell) {
            Some(j) => SymVec::unit(dim, j),
            None => SymVec::zero(dim),
        })
        .collect();
    let structural = run_symbolic(program, &mut state);
    if !structural.is_empty() {
        return structural;
    }
    compare_to_intended(layout, &state, &intended_state(layout))
}

/// Prove `program` is a correct recovery for the erasure of `erased` cells:
/// starting from the intended encoded state with the erased blocks zeroed
/// (exactly what [`dcode_codec::Stripe::erase_columns`] leaves behind),
/// replay must restore every erased block *and* leave every survivor
/// untouched. Empty result = proved.
pub fn verify_plan_program(
    layout: &CodeLayout,
    program: &XorProgram,
    erased: &BTreeSet<Cell>,
) -> Vec<Diagnostic> {
    assert_eq!(
        program.grid(),
        layout.grid(),
        "program compiled for a different grid"
    );
    let grid = layout.grid();
    let intended = intended_state(layout);
    let mut state = intended.clone();
    for &cell in erased {
        state[grid.index(cell)] = SymVec::zero(layout.data_len());
    }
    let structural = run_symbolic(program, &mut state);
    if !structural.is_empty() {
        return structural;
    }
    compare_to_intended(layout, &state, &intended)
}

/// Prove a degraded-read *subprogram* restores exactly the `wanted`
/// cells under the erasure of `erased`, while leaving every survivor
/// untouched. Unlike [`verify_plan_program`], blocks in `erased ∖
/// wanted` are unconstrained at the end: the optimizer's scratch
/// coloring is free to leave intermediates anywhere in the erased set
/// (the array layer reads only the wanted cells after replay), so
/// demanding the full column be restored would reject correct optimized
/// subprograms. Empty result = proved.
pub fn verify_subprogram(
    layout: &CodeLayout,
    program: &XorProgram,
    erased: &BTreeSet<Cell>,
    wanted: &BTreeSet<Cell>,
) -> Vec<Diagnostic> {
    assert_eq!(
        program.grid(),
        layout.grid(),
        "program compiled for a different grid"
    );
    debug_assert!(
        wanted.is_subset(erased),
        "wanted cells must be a subset of the erased cells"
    );
    let grid = layout.grid();
    let intended = intended_state(layout);
    let mut state = intended.clone();
    for &cell in erased {
        state[grid.index(cell)] = SymVec::zero(layout.data_len());
    }
    let structural = run_symbolic(program, &mut state);
    if !structural.is_empty() {
        return structural;
    }
    grid.cells()
        .filter(|cell| !erased.contains(cell) || wanted.contains(cell))
        .filter(|&cell| state[grid.index(cell)] != intended[grid.index(cell)])
        .map(|cell| {
            Diagnostic::error(DiagKind::WrongSymbols {
                cell,
                expected: intended[grid.index(cell)].symbols(),
                actual: state[grid.index(cell)].symbols(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::decoder::plan_column_recovery;

    #[test]
    fn encode_programs_prove_equivalent() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let prog = XorProgram::compile_encode(&layout);
                let diags = verify_encode_program(&layout, &prog);
                assert!(diags.is_empty(), "{} p={p}: {diags:?}", layout.name());
            }
        }
    }

    #[test]
    fn recovery_programs_prove_equivalent() {
        for layout in all_codes(7) {
            for c1 in 0..layout.disks() {
                for c2 in c1 + 1..layout.disks() {
                    let plan = plan_column_recovery(&layout, &[c1, c2]).unwrap();
                    let prog = XorProgram::compile_plan(layout.grid(), &plan);
                    let erased: BTreeSet<Cell> = layout
                        .grid()
                        .column(c1)
                        .chain(layout.grid().column(c2))
                        .collect();
                    let diags = verify_plan_program(&layout, &prog, &erased);
                    assert!(
                        diags.is_empty(),
                        "{} cols=({c1},{c2}): {diags:?}",
                        layout.name()
                    );
                }
            }
        }
    }

    #[test]
    fn intended_state_weight_matches_generator_rows() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        let intended = intended_state(&layout);
        // Every D-Code parity is the XOR of exactly n−2 data symbols.
        for cell in layout.parity_cells() {
            assert_eq!(intended[layout.grid().index(cell)].weight(), 5);
        }
    }
}
