//! Schedule lints: findings that don't (necessarily) change the computed
//! bytes but mark a program as malformed, wasteful, or over-serialized.
//!
//! The passes here are purely structural — no symbol vectors — so they run
//! in `O(ops + sources)` and apply to hand-built programs as well as
//! compiler output. Anything the compilers emit today lints clean; the
//! mutation suite proves each lint fires on the corruption class it names.

use crate::diag::{DiagKind, Diagnostic};
use dcode_codec::XorProgram;
use std::collections::BTreeMap;

/// Run every lint over `program`.
pub fn lint(program: &XorProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    lint_sources(program, &mut out);
    lint_dead_ops(program, &mut out);
    lint_level_minimality(program, &mut out);
    out
}

/// Per-op source-list lints: self-references, duplicate sources, empty ops.
fn lint_sources(program: &XorProgram, out: &mut Vec<Diagnostic>) {
    for op in 0..program.op_count() {
        let target = program.op_target(op);
        let sources = program.op_sources(op);
        if sources.is_empty() {
            out.push(Diagnostic::warning(DiagKind::EmptyOp { op }));
        }
        if sources.iter().any(|&s| s as usize == target) {
            // The executor detaches the target before gathering, so this
            // panics at replay time — an error, not a style nit.
            out.push(Diagnostic::error(DiagKind::SelfReference { op }));
        }
        let mut multiplicity: BTreeMap<u32, usize> = BTreeMap::new();
        for &s in sources {
            *multiplicity.entry(s).or_insert(0) += 1;
        }
        for (block, count) in multiplicity {
            if count > 1 {
                out.push(Diagnostic::warning(DiagKind::DuplicateSource {
                    op,
                    block: block as usize,
                    multiplicity: count,
                }));
            }
        }
    }
}

/// Flag ops whose target is overwritten by a later op before any op reads
/// it — the earlier computation is dead.
fn lint_dead_ops(program: &XorProgram, out: &mut Vec<Diagnostic>) {
    // last_write[block] = (op, has the value been read since?)
    let mut last_write: BTreeMap<usize, (usize, bool)> = BTreeMap::new();
    for op in 0..program.op_count() {
        for &s in program.op_sources(op) {
            if let Some(entry) = last_write.get_mut(&(s as usize)) {
                entry.1 = true;
            }
        }
        let target = program.op_target(op);
        if let Some(&(prev_op, read)) = last_write.get(&target) {
            if !read {
                out.push(Diagnostic::warning(DiagKind::DeadOp {
                    op: prev_op,
                    shadowed_by: op,
                }));
            }
        }
        last_write.insert(target, (op, false));
    }
}

/// Flag ops placed later than their data dependencies require. An op's
/// earliest legal level is one past the deepest same-or-earlier-level op
/// that produces one of its sources or previously wrote its target; a gap
/// means the level structure serializes needlessly.
fn lint_level_minimality(program: &XorProgram, out: &mut Vec<Diagnostic>) {
    let mut level_of_op = vec![0usize; program.op_count()];
    for lv in 0..program.level_count() {
        for op in program.level_ops(lv) {
            level_of_op[op] = lv;
        }
    }
    // Deepest level at which each block was last written, as the op list is
    // walked in order.
    let mut written_at: BTreeMap<usize, usize> = BTreeMap::new();
    for (op, &level) in level_of_op.iter().enumerate() {
        let mut earliest = 0usize;
        for &s in program.op_sources(op) {
            if let Some(&lv) = written_at.get(&(s as usize)) {
                earliest = earliest.max(lv + 1);
            }
        }
        let target = program.op_target(op);
        if let Some(&lv) = written_at.get(&target) {
            // Write-after-write: must stay past the previous writer.
            earliest = earliest.max(lv + 1);
        }
        if earliest < level {
            out.push(Diagnostic::warning(DiagKind::HoistableOp {
                op,
                level,
                earliest,
            }));
        }
        written_at.insert(target, level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::decoder::plan_column_recovery;

    #[test]
    fn compiled_programs_lint_clean() {
        for p in [5usize, 7, 11] {
            for layout in all_codes(p) {
                let prog = XorProgram::compile_encode(&layout);
                let diags = lint(&prog);
                assert!(diags.is_empty(), "{} p={p}: {:?}", layout.name(), diags);
                for c1 in 0..layout.disks() {
                    for c2 in c1 + 1..layout.disks() {
                        let plan = plan_column_recovery(&layout, &[c1, c2]).unwrap();
                        let prog = XorProgram::compile_plan(layout.grid(), &plan);
                        let diags = lint(&prog);
                        assert!(
                            diags.is_empty(),
                            "{} p={p} cols=({c1},{c2}): {diags:?}",
                            layout.name()
                        );
                    }
                }
            }
        }
    }
}
