//! The all-passes driver: one call that verifies everything the codec
//! will ever compile for a layout.

use crate::diag::{DiagKind, Diagnostic, Severity};
use crate::equiv::{verify_encode_program, verify_plan_program};
use crate::fused::{verify_fused_program, verify_fused_recovery};
use crate::lint::lint;
use crate::optpair::verify_optimized_pair;
use crate::race::check_levels;
use crate::rank::verify_mds_by_rank;
use dcode_codec::opt::{optimize, OptConfig};
use dcode_codec::FusedProgram;
use dcode_codec::XorProgram;
use dcode_core::decoder::plan_column_recovery;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;
use std::fmt;

/// Everything the verifier concluded about one layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// The code's display name.
    pub code: String,
    /// Its prime parameter.
    pub p: usize,
    /// Disks in the array.
    pub disks: usize,
    /// Ops in the compiled encode program.
    pub encode_ops: usize,
    /// Dependency levels in the compiled encode program.
    pub encode_levels: usize,
    /// Two-column recovery programs verified (all `C(disks, 2)` pairs).
    pub plans_verified: usize,
    /// Fused batch encode programs proved equivalent to N independent
    /// copies of the single-stripe generator (one per batch shape).
    pub fused_batches_verified: usize,
    /// Optimizer input/output pairs proved equivalent on their outputs
    /// over a generic initial state, with no cost metric regressed
    /// (the encode program plus every recovery plan program).
    pub optimized_pairs_verified: usize,
    /// Fused batch *recovery* programs proved stripe-confined and
    /// symbolically restoring (one per batch shape).
    pub fused_recoveries_verified: usize,
    /// Every finding from every pass, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// No findings at all — the bar the CI `verify` job enforces.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} p={} ({} disks): encode {} ops / {} levels, {} recovery plans, {} fused batches, {} optimized pairs, {} fused recoveries — ",
            self.code,
            self.p,
            self.disks,
            self.encode_ops,
            self.encode_levels,
            self.plans_verified,
            self.fused_batches_verified,
            self.optimized_pairs_verified,
            self.fused_recoveries_verified
        )?;
        if self.is_clean() {
            f.write_str("verified")
        } else {
            write!(
                f,
                "{} finding(s), {} error(s)",
                self.diagnostics.len(),
                self.error_count()
            )
        }
    }
}

/// Run a program through all three program-level passes, prefixing nothing:
/// race check, lints, then the supplied equivalence closure.
fn verify_program(
    program: &XorProgram,
    equivalence: impl FnOnce(&XorProgram) -> Vec<Diagnostic>,
    out: &mut Vec<Diagnostic>,
) {
    out.extend(check_levels(program));
    out.extend(lint(program));
    out.extend(equivalence(program));
}

/// Verify one layout end to end:
///
/// 1. **MDS rank** — every 1- and 2-disk erasure is solvable over GF(2);
/// 2. **encode program** — the compiled encode is race-free, lint-clean,
///    and symbolically equal to the layout's generator matrix;
/// 3. **recovery programs** — for every 2-column erasure, the compiled
///    plan is race-free, lint-clean, and symbolically restores the stripe;
/// 4. **fused batches** — the bulk encoder's fused batch programs are
///    stripe-confined and symbolically equal to N independent copies of
///    the single-stripe generator;
/// 5. **optimized pairs** — the default optimizer pipeline's output for
///    the encode program and every recovery program agrees with its
///    input on every output block over a fully generic initial state,
///    and regresses no cost metric (the independent check of the
///    optimizer's own certificates);
/// 6. **fused recoveries** — fused batch recovery programs restore every
///    stripe of the batch without crossing stripe boundaries.
///
/// A clean report is a proof (for every payload and block size) that the
/// codec's compiled hot paths are correct and that `run_parallel` is safe.
pub fn verify_layout(layout: &CodeLayout) -> VerifyReport {
    let mut diagnostics = Vec::new();

    if let Err(v) = verify_mds_by_rank(layout) {
        diagnostics.push(Diagnostic::error(DiagKind::Unrecoverable {
            failed: v.failed,
            deficiency: v.deficiency,
        }));
    }

    let encode = XorProgram::compile_encode(layout);
    verify_program(
        &encode,
        |p| verify_encode_program(layout, p),
        &mut diagnostics,
    );

    let config = OptConfig::default();
    let mut optimized_pairs_verified = 0usize;
    let prove_optimized =
        |program: &XorProgram, outputs: &BTreeSet<usize>, diagnostics: &mut Vec<Diagnostic>| {
            let opt = optimize(program, Some(outputs), &config);
            diagnostics.extend(verify_optimized_pair(program, &opt.program, outputs));
        };
    let encode_outputs: BTreeSet<usize> = (0..encode.op_count())
        .map(|op| encode.op_target(op))
        .collect();
    prove_optimized(&encode, &encode_outputs, &mut diagnostics);
    optimized_pairs_verified += 1;

    let mut plans_verified = 0usize;
    for c1 in 0..layout.disks() {
        for c2 in c1 + 1..layout.disks() {
            match plan_column_recovery(layout, &[c1, c2]) {
                Ok(plan) => {
                    let program = XorProgram::compile_plan(layout.grid(), &plan);
                    let erased: BTreeSet<Cell> = layout
                        .grid()
                        .column(c1)
                        .chain(layout.grid().column(c2))
                        .collect();
                    verify_program(
                        &program,
                        |p| verify_plan_program(layout, p, &erased),
                        &mut diagnostics,
                    );
                    plans_verified += 1;
                    let grid = layout.grid();
                    let outputs: BTreeSet<usize> =
                        erased.iter().map(|&cell| grid.index(cell)).collect();
                    prove_optimized(&program, &outputs, &mut diagnostics);
                    optimized_pairs_verified += 1;
                }
                Err(e) => diagnostics.push(Diagnostic::error(DiagKind::PlanFailed {
                    failed: vec![c1, c2],
                    reason: e.to_string(),
                })),
            }
        }
    }

    // The bulk encoder's fused fast path: prove a couple of batch shapes
    // (a trivial and a non-trivial one — the fuser is shape-uniform, and
    // the per-prime × per-batch exhaustive grid lives in the crate's
    // tests, where runtime is cheaper).
    let mut fused_batches_verified = 0usize;
    for batch in [2usize, 3] {
        let fused = FusedProgram::fuse(&encode, batch);
        diagnostics.extend(verify_fused_program(layout, &fused));
        fused_batches_verified += 1;
    }

    // The bulk path's fused *recovery* programs, same sampling logic:
    // one representative erasure, two batch shapes. Skipped when the
    // planner (rightly) refuses the pair — the rank pass above already
    // reported the erasure as unrecoverable.
    let mut fused_recoveries_verified = 0usize;
    if plan_column_recovery(layout, &[0, 1]).is_ok() {
        for batch in [2usize, 3] {
            diagnostics.extend(verify_fused_recovery(layout, &[0, 1], batch));
            fused_recoveries_verified += 1;
        }
    }

    VerifyReport {
        code: layout.name().to_string(),
        p: layout.prime(),
        disks: layout.disks(),
        encode_ops: encode.op_count(),
        encode_levels: encode.level_count(),
        plans_verified,
        fused_batches_verified,
        optimized_pairs_verified,
        fused_recoveries_verified,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_core::equation::EquationKind;
    use dcode_core::layout::LayoutBuilder;

    #[test]
    fn dcode_report_is_clean() {
        let report = verify_layout(&dcode_core::dcode::dcode(7).unwrap());
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.plans_verified, 21);
        assert_eq!(report.encode_ops, 14);
        assert_eq!(report.fused_batches_verified, 2);
        assert_eq!(report.optimized_pairs_verified, 22);
        assert_eq!(report.fused_recoveries_verified, 2);
        assert!(report.to_string().ends_with("verified"));
    }

    #[test]
    fn raid5_toy_report_flags_unrecoverable_pairs() {
        let mut b = LayoutBuilder::new("raid5", 5, 2, 4);
        for r in 0..2 {
            b.equation(
                EquationKind::Row,
                Cell::new(r, 3),
                vec![Cell::new(r, 0), Cell::new(r, 1), Cell::new(r, 2)],
            );
        }
        let report = verify_layout(&b.build().unwrap());
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::Unrecoverable { .. })));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::PlanFailed { .. })));
    }
}
