//! Rank-based MDS checking over GF(2).
//!
//! An erasure is recoverable iff the parity equations restricted to the
//! lost cells have full column rank over GF(2) — the algebraic argument
//! behind the MDS proofs of the array-code literature, run directly on the
//! layout instead of replaying the peeling planner. One word-packed
//! Gaussian elimination per failure scenario replaces the planner's full
//! peel + fallback + step extraction, which is what lets the integration
//! suite sweep every code, prime, and column pair cheaply (the measured
//! speedup is recorded in EXPERIMENTS.md).

use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::collections::BTreeSet;
use std::fmt;

/// A failure scenario whose lost cells are not spanned by the surviving
/// equations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RankViolation {
    /// The failed disk columns.
    pub failed: Vec<usize>,
    /// How many lost cells remain undetermined (column-rank deficiency).
    pub deficiency: usize,
}

impl fmt::Display for RankViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failure of disks {:?} unrecoverable ({} cells undetermined)",
            self.failed, self.deficiency
        )
    }
}

impl std::error::Error for RankViolation {}

/// Column-rank deficiency of the equation system restricted to `erased`:
/// `0` means the erasure is uniquely solvable (recoverable); `k > 0` means
/// `k` lost cells stay undetermined.
pub fn rank_deficiency(layout: &CodeLayout, erased: &BTreeSet<Cell>) -> usize {
    let grid = layout.grid();
    let mut col_of = vec![usize::MAX; grid.len()];
    for (j, &cell) in erased.iter().enumerate() {
        col_of[grid.index(cell)] = j;
    }
    let n = erased.len();
    if n == 0 {
        return 0;
    }
    let words = n.div_ceil(64);
    // One row per equation touching an unknown: its unknown-cell mask.
    // XOR (not OR) so a cell appearing twice in one equation cancels,
    // matching the byte-level semantics.
    let mut rows: Vec<Vec<u64>> = Vec::new();
    for eq in layout.equations() {
        let mut mask = vec![0u64; words];
        let mut any = false;
        for cell in eq.cells() {
            let j = col_of[grid.index(cell)];
            if j != usize::MAX {
                mask[j / 64] ^= 1 << (j % 64);
                any = true;
            }
        }
        if any && mask.iter().any(|&w| w != 0) {
            rows.push(mask);
        }
    }
    // Word-packed Gaussian elimination for the column rank.
    let mut rank = 0usize;
    for c in 0..n {
        let Some(pivot) = (rank..rows.len()).find(|&r| rows[r][c / 64] >> (c % 64) & 1 == 1) else {
            continue;
        };
        rows.swap(rank, pivot);
        let pivot_row = rows[rank].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && row[c / 64] >> (c % 64) & 1 == 1 {
                for (d, s) in row.iter_mut().zip(&pivot_row) {
                    *d ^= s;
                }
            }
        }
        rank += 1;
    }
    n - rank
}

/// Whether the erasure of `failed_cols` whole disks is recoverable.
pub fn columns_recoverable(layout: &CodeLayout, failed_cols: &[usize]) -> bool {
    let mut erased = BTreeSet::new();
    for &col in failed_cols {
        erased.extend(layout.grid().column(col));
    }
    rank_deficiency(layout, &erased) == 0
}

/// Prove the RAID-6 fault-tolerance half of the MDS property by rank:
/// every single disk and every pair of disks must be recoverable.
pub fn verify_mds_by_rank(layout: &CodeLayout) -> Result<(), RankViolation> {
    let disks = layout.disks();
    for c in 0..disks {
        let erased: BTreeSet<Cell> = layout.grid().column(c).collect();
        let deficiency = rank_deficiency(layout, &erased);
        if deficiency != 0 {
            return Err(RankViolation {
                failed: vec![c],
                deficiency,
            });
        }
    }
    for c1 in 0..disks {
        for c2 in c1 + 1..disks {
            let erased: BTreeSet<Cell> = layout
                .grid()
                .column(c1)
                .chain(layout.grid().column(c2))
                .collect();
            let deficiency = rank_deficiency(layout, &erased);
            if deficiency != 0 {
                return Err(RankViolation {
                    failed: vec![c1, c2],
                    deficiency,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcode_baselines::registry::all_codes;
    use dcode_core::equation::EquationKind;
    use dcode_core::layout::LayoutBuilder;

    #[test]
    fn rank_agrees_with_planner_for_every_code() {
        // Differential: the rank verdict must match plan_column_recovery on
        // every pair — including the EVENODD pairs that need the planner's
        // Gaussian fallback.
        for p in [5usize, 7] {
            for layout in all_codes(p) {
                for c1 in 0..layout.disks() {
                    for c2 in c1 + 1..layout.disks() {
                        let planner =
                            dcode_core::decoder::plan_column_recovery(&layout, &[c1, c2]).is_ok();
                        assert_eq!(
                            columns_recoverable(&layout, &[c1, c2]),
                            planner,
                            "{} p={p} cols=({c1},{c2})",
                            layout.name()
                        );
                    }
                }
                assert!(verify_mds_by_rank(&layout).is_ok(), "{}", layout.name());
            }
        }
    }

    #[test]
    fn raid5_toy_fails_by_rank() {
        let mut b = LayoutBuilder::new("raid5", 5, 2, 4);
        for r in 0..2 {
            b.equation(
                EquationKind::Row,
                Cell::new(r, 3),
                vec![Cell::new(r, 0), Cell::new(r, 1), Cell::new(r, 2)],
            );
        }
        let l = b.build().unwrap();
        let v = verify_mds_by_rank(&l).unwrap_err();
        assert_eq!(v.failed.len(), 2);
        assert!(v.deficiency > 0);
    }

    #[test]
    fn three_columns_exceed_raid6_rank() {
        let layout = dcode_core::dcode::dcode(7).unwrap();
        assert!(!columns_recoverable(&layout, &[0, 1, 2]));
        assert!(columns_recoverable(&layout, &[0, 6]));
    }
}
