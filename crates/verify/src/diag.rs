//! Machine-readable verification diagnostics.
//!
//! Every pass — equivalence, race checking, linting, MDS rank — reports
//! through one [`Diagnostic`] type so callers (the CLI, CI, the mutation
//! suite) can match on structured [`DiagKind`]s instead of scraping
//! strings. `Display` renders the human form.

use dcode_core::grid::Cell;
use std::fmt;

/// How bad a finding is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Stylistic or efficiency concern; the program still computes the
    /// right bytes.
    Warning,
    /// The program is wrong, unsafe to parallelize, or would panic.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What a pass found, with enough structure to act on programmatically.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DiagKind {
    /// Equivalence: after symbolic replay, `cell` holds the wrong GF(2)
    /// combination of data symbols.
    WrongSymbols {
        /// The block whose final value is wrong.
        cell: Cell,
        /// Data-symbol indices the layout says the block must equal.
        expected: Vec<usize>,
        /// Data-symbol indices the program actually left there.
        actual: Vec<usize>,
    },
    /// Fused equivalence: after symbolic replay of a fused batch program,
    /// `stripe`'s block `cell` holds the wrong GF(2) combination over the
    /// batch-widened symbol space.
    FusedWrongSymbols {
        /// The stripe within the batch.
        stripe: usize,
        /// The block whose final value is wrong.
        cell: Cell,
        /// Batch-widened symbol indices the layout requires.
        expected: Vec<usize>,
        /// Batch-widened symbol indices the program actually left there.
        actual: Vec<usize>,
    },
    /// Fused structural: an op in one stripe's segment of a level touches
    /// a virtual block outside that stripe's range — cross-stripe
    /// contamination, which would make the tile-major per-stripe replay
    /// diverge from sequential replay.
    CrossStripe {
        /// The offending op (flat index into the fused program).
        op: usize,
        /// The stripe the op's level position assigns it to.
        stripe: usize,
        /// The out-of-stripe virtual block index it touches.
        block: usize,
    },
    /// Structural: an op's target or source index lies outside the grid.
    OutOfRange {
        /// The offending op.
        op: usize,
        /// The out-of-range linear block index.
        block: usize,
    },
    /// Race: two ops of one dependency level write the same block.
    WriteWriteHazard {
        /// The dependency level.
        level: usize,
        /// The earlier op.
        first_op: usize,
        /// The later op writing the same block.
        second_op: usize,
        /// The doubly-written linear block index.
        block: usize,
    },
    /// Race: an op reads a block that another op of the *same* level
    /// writes, so `run_parallel`'s outcome would depend on scheduling.
    ReadWriteHazard {
        /// The dependency level.
        level: usize,
        /// The op doing the read.
        reader_op: usize,
        /// The same-level op writing the block.
        writer_op: usize,
        /// The contested linear block index.
        block: usize,
    },
    /// Lint: an op lists its own target among its sources. The executor
    /// detaches the target before gathering, so this panics at runtime
    /// (there is no in-place accumulate idiom in this IR — the first
    /// source is copied over the target).
    SelfReference {
        /// The self-referencing op.
        op: usize,
    },
    /// Lint: one op lists the same source block more than once. An even
    /// multiplicity cancels to nothing under XOR; an odd one wastes reads.
    DuplicateSource {
        /// The op with the repeated source.
        op: usize,
        /// The repeated linear block index.
        block: usize,
        /// How many times it appears.
        multiplicity: usize,
    },
    /// Lint: an op with no sources — it zeroes its target, which no
    /// compiled encode or recovery schedule ever needs.
    EmptyOp {
        /// The sourceless op.
        op: usize,
    },
    /// Lint: an op whose result is overwritten by a later op before
    /// anything reads it — the work is dead.
    DeadOp {
        /// The op computing the unused value.
        op: usize,
        /// The later op that overwrites it.
        shadowed_by: usize,
    },
    /// Lint: the level structure is non-minimal — the op could legally run
    /// at an earlier level, so the program serializes more than its data
    /// dependencies require.
    HoistableOp {
        /// The late op.
        op: usize,
        /// The level it sits in.
        level: usize,
        /// The earliest level its dependencies allow.
        earliest: usize,
    },
    /// Peephole: an op recomputes the exact XOR expression an earlier op
    /// already produced (and none of the shared sources were rewritten in
    /// between) — a common-subexpression-elimination opportunity.
    DuplicateExpression {
        /// The op doing the redundant recomputation.
        op: usize,
        /// The earlier op that already computed the same value.
        earlier_op: usize,
    },
    /// Peephole: an op's result is never read by any later op, never
    /// overwritten, and is not one of the program's expected output blocks
    /// — a dead scratch write.
    UnreadResult {
        /// The op computing the unused value.
        op: usize,
        /// The linear block index it writes.
        block: usize,
    },
    /// Peephole: replaying one dependency level's widest gather touches
    /// more bytes than the working-set budget, so the tiled kernel's
    /// blocks no longer fit cache together.
    OversizedWorkingSet {
        /// The dependency level.
        level: usize,
        /// Estimated working set in bytes (widest gather + its target,
        /// one tile each).
        bytes: usize,
        /// The budget the estimate exceeded.
        budget: usize,
    },
    /// MDS rank: an erasure the code must tolerate is symbolically
    /// unrecoverable (the survivor equations do not span the lost cells).
    Unrecoverable {
        /// The failed disk columns.
        failed: Vec<usize>,
        /// Rank deficiency: how many lost cells stay undetermined.
        deficiency: usize,
    },
    /// A recovery plan for a legal erasure could not be produced at all.
    PlanFailed {
        /// The failed disk columns.
        failed: Vec<usize>,
        /// The planner's error message.
        reason: String,
    },
    /// Optimizer: after symbolic replay over a fully generic initial
    /// state, the optimized program leaves an output block with a
    /// different GF(2) combination of initial block contents than the
    /// original — the rewrite changed observable semantics.
    OptimizedDiverges {
        /// The diverging output block (linear index).
        block: usize,
        /// Initial-block indices the original program leaves there.
        expected: Vec<usize>,
        /// Initial-block indices the optimized program leaves there.
        actual: Vec<usize>,
    },
    /// Optimizer: a cost metric of the optimized program exceeds the
    /// original's — the pipeline made the program *worse*, violating its
    /// monotonicity obligation.
    CostRegression {
        /// The regressed metric (`ops`, `xors`, `reads`, `levels`,
        /// `scratch`).
        metric: &'static str,
        /// The metric before the pipeline.
        before: usize,
        /// The metric after.
        after: usize,
    },
    /// Lock discipline: the runtime lock-acquisition order graph contains
    /// a cycle — two threads taking these locks in opposite orders can
    /// deadlock. Reported by `dcode race` from the `minisim` lock-order
    /// registry.
    LockOrderCycle {
        /// The cycle as a lock-name chain; the last entry is acquired
        /// while the first is held, closing the loop.
        chain: Vec<String>,
    },
    /// Lock discipline: a thread parked on a condvar while still holding
    /// *other* locks — everything in `held` stays locked for the whole
    /// wait, an easy route to convoying or deadlock.
    CondvarWaitWhileHolding {
        /// The condvar waited on.
        condvar: String,
        /// The lock the wait atomically released (the condvar's paired
        /// mutex).
        released: String,
        /// Locks still held across the wait.
        held: Vec<String>,
    },
    /// Lock discipline: a lock was held longer than the hold-time budget,
    /// so threads queueing behind it stall for that long.
    LongLockHold {
        /// The lock's registered name.
        lock: String,
        /// The longest observed hold in microseconds.
        micros: u64,
        /// The budget it exceeded, in microseconds.
        budget_micros: u64,
    },
}

/// One finding from one verification pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// The structured finding.
    pub kind: DiagKind,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(kind: DiagKind) -> Self {
        Diagnostic {
            severity: Severity::Error,
            kind,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(kind: DiagKind) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            kind,
        }
    }
}

fn symbol_list(symbols: &[usize]) -> String {
    if symbols.is_empty() {
        return "0".to_string();
    }
    symbols
        .iter()
        .map(|j| format!("d{j}"))
        .collect::<Vec<_>>()
        .join("^")
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.severity)?;
        match &self.kind {
            DiagKind::WrongSymbols {
                cell,
                expected,
                actual,
            } => write!(
                f,
                "block {cell} ends as {} but the layout requires {}",
                symbol_list(actual),
                symbol_list(expected)
            ),
            DiagKind::FusedWrongSymbols {
                stripe,
                cell,
                expected,
                actual,
            } => write!(
                f,
                "stripe {stripe} block {cell} ends as {} but the layout requires {}",
                symbol_list(actual),
                symbol_list(expected)
            ),
            DiagKind::CrossStripe { op, stripe, block } => write!(
                f,
                "op {op} belongs to stripe {stripe} but touches virtual block {block} of another stripe"
            ),
            DiagKind::OutOfRange { op, block } => {
                write!(f, "op {op} references block {block} outside the grid")
            }
            DiagKind::WriteWriteHazard {
                level,
                first_op,
                second_op,
                block,
            } => write!(
                f,
                "level {level}: ops {first_op} and {second_op} both write block {block}"
            ),
            DiagKind::ReadWriteHazard {
                level,
                reader_op,
                writer_op,
                block,
            } => write!(
                f,
                "level {level}: op {reader_op} reads block {block} while op {writer_op} writes it"
            ),
            DiagKind::SelfReference { op } => {
                write!(f, "op {op} lists its own target among its sources")
            }
            DiagKind::DuplicateSource {
                op,
                block,
                multiplicity,
            } => write!(
                f,
                "op {op} reads block {block} {multiplicity} times ({})",
                if multiplicity % 2 == 0 {
                    "even multiplicity cancels to nothing"
                } else {
                    "redundant reads"
                }
            ),
            DiagKind::EmptyOp { op } => write!(f, "op {op} has no sources (zeroes its target)"),
            DiagKind::DeadOp { op, shadowed_by } => write!(
                f,
                "op {op} is dead: op {shadowed_by} overwrites its target before any read"
            ),
            DiagKind::HoistableOp {
                op,
                level,
                earliest,
            } => write!(
                f,
                "op {op} sits in level {level} but could run at level {earliest}"
            ),
            DiagKind::DuplicateExpression { op, earlier_op } => write!(
                f,
                "op {op} recomputes the expression op {earlier_op} already produced"
            ),
            DiagKind::UnreadResult { op, block } => write!(
                f,
                "op {op} writes block {block}, which nothing reads and no output requires"
            ),
            DiagKind::OversizedWorkingSet {
                level,
                bytes,
                budget,
            } => write!(
                f,
                "level {level} needs a ~{bytes}-byte working set (budget {budget})"
            ),
            DiagKind::Unrecoverable { failed, deficiency } => write!(
                f,
                "erasure of disks {failed:?} is unrecoverable ({deficiency} cells undetermined)"
            ),
            DiagKind::PlanFailed { failed, reason } => {
                write!(f, "no recovery plan for disks {failed:?}: {reason}")
            }
            DiagKind::OptimizedDiverges {
                block,
                expected,
                actual,
            } => write!(
                f,
                "optimized program leaves block {block} as {} but the original computes {}",
                symbol_list(actual),
                symbol_list(expected)
            ),
            DiagKind::CostRegression {
                metric,
                before,
                after,
            } => write!(
                f,
                "optimizer regressed {metric}: {before} before, {after} after"
            ),
            DiagKind::LockOrderCycle { chain } => write!(
                f,
                "lock-order cycle: {} -> {}",
                chain.join(" -> "),
                chain.first().map_or("?", String::as_str)
            ),
            DiagKind::CondvarWaitWhileHolding {
                condvar,
                released,
                held,
            } => write!(
                f,
                "condvar {condvar} waited (releasing {released}) while still holding [{}]",
                held.join(", ")
            ),
            DiagKind::LongLockHold {
                lock,
                micros,
                budget_micros,
            } => write!(
                f,
                "lock {lock} held for {micros}us (budget {budget_micros}us)"
            ),
        }
    }
}
