#![warn(missing_docs)]
//! # dcode-verify
//!
//! Static verification for the codec's compiled XOR schedules. Since PR 1
//! every hot path — encode, decode replay, parity update, bulk stripes —
//! runs through a compiled [`XorProgram`](dcode_codec::XorProgram), so a
//! single schedule-compiler bug would silently corrupt every stripe, and
//! byte-level property tests only *sample* that failure mode. This crate
//! closes the gap with proofs: every block is modeled as a GF(2) bit-vector
//! over the stripe's data symbols ([`sym::SymVec`]), where XOR-only byte
//! code is mirrored exactly, so one symbolic replay covers every payload
//! and block size at once.
//!
//! Three passes, one [`Diagnostic`] vocabulary:
//!
//! * **Equivalence** ([`equiv`]) — replay a compiled encode or recovery
//!   program symbolically and prove every block ends at the value the
//!   layout's generator matrix demands. The [`fused`] pass extends this to
//!   the bulk path's fused batch programs — encode *and* recovery: over a
//!   batch-widened symbol space, a fused program must be stripe-confined
//!   and equal to N independent copies of the single-stripe generator
//!   (resp. restore every stripe's erased blocks). The [`optpair`] pass
//!   covers the optimizer tier: an optimized program must agree with its
//!   original on every output block over a fully generic initial state,
//!   and must not regress any cost metric.
//! * **Static race check** ([`race`]) — prove every dependency level is
//!   hazard-free (no op reads or writes another same-level op's target),
//!   which makes `run_parallel` data-race-free *by construction*: workers
//!   only ever write detached level targets and read blocks no sibling
//!   writes.
//! * **Schedule lints** ([`lint`]) — dead ops, duplicate / even-multiplicity
//!   sources, self-referencing targets (which the detach-based executor
//!   would turn into runtime panics), and non-minimal level placement.
//!
//! [`rank`] adds a rank-based MDS checker (recoverability as column rank
//! over GF(2)), and [`report::verify_layout`] drives everything for one
//! layout: MDS rank, the encode program, and all `C(disks, 2)` two-column
//! recovery programs. `dcode-cli verify --all` runs it over the whole code
//! registry; CI fails on any diagnostic.
//!
//! ```
//! use dcode_core::dcode::dcode;
//! use dcode_verify::verify_layout;
//!
//! let report = verify_layout(&dcode(7).unwrap());
//! assert!(report.is_clean());
//! ```

pub mod diag;
pub mod equiv;
pub mod fused;
pub mod lint;
pub mod optpair;
pub mod race;
pub mod rank;
pub mod report;
pub mod sym;

pub use diag::{DiagKind, Diagnostic, Severity};
pub use equiv::{
    intended_state, run_symbolic, verify_encode_program, verify_plan_program, verify_subprogram,
};
pub use fused::{
    verify_fused_encode, verify_fused_plan, verify_fused_program, verify_fused_recovery,
};
pub use lint::lint;
pub use optpair::verify_optimized_pair;
pub use race::check_levels;
pub use rank::{columns_recoverable, rank_deficiency, verify_mds_by_rank, RankViolation};
pub use report::{verify_layout, VerifyReport};
pub use sym::SymVec;
