//! Disk-file I/O: each simulated disk is one file `disk_<i>.bin` holding
//! that column's blocks for every stripe, in stripe order.

use crate::meta::ArrayMeta;
use dcode_baselines::registry::build;
use dcode_codec::Stripe;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use std::io;
use std::path::{Path, PathBuf};

/// Path of disk `i` inside the array directory.
pub fn disk_path(dir: &Path, disk: usize) -> PathBuf {
    dir.join(format!("disk_{disk}.bin"))
}

/// Build the layout described by the metadata.
pub fn layout_of(meta: &ArrayMeta) -> CodeLayout {
    build(meta.code, meta.p).expect("metadata was validated at creation")
}

/// Expected byte length of each disk file.
pub fn disk_file_len(meta: &ArrayMeta, layout: &CodeLayout) -> usize {
    meta.stripes * layout.rows() * meta.block
}

/// Which disks are currently readable (file exists with the right length).
pub fn scan_disks(dir: &Path, meta: &ArrayMeta, layout: &CodeLayout) -> Vec<bool> {
    let want = disk_file_len(meta, layout) as u64;
    (0..layout.disks())
        .map(|d| std::fs::metadata(disk_path(dir, d)).is_ok_and(|m| m.len() == want))
        .collect()
}

/// Write all stripes out as per-disk files.
pub fn write_disks(
    dir: &Path,
    meta: &ArrayMeta,
    layout: &CodeLayout,
    stripes: &[Stripe],
) -> io::Result<()> {
    for d in 0..layout.disks() {
        let mut buf = Vec::with_capacity(disk_file_len(meta, layout));
        for stripe in stripes {
            for r in 0..layout.rows() {
                buf.extend_from_slice(stripe.block(Cell::new(r, d)));
            }
        }
        std::fs::write(disk_path(dir, d), &buf)?;
    }
    Ok(())
}

/// Write a single disk's file from in-memory stripes (after a rebuild).
pub fn write_one_disk(
    dir: &Path,
    meta: &ArrayMeta,
    layout: &CodeLayout,
    stripes: &[Stripe],
    disk: usize,
) -> io::Result<()> {
    let mut buf = Vec::with_capacity(disk_file_len(meta, layout));
    for stripe in stripes {
        for r in 0..layout.rows() {
            buf.extend_from_slice(stripe.block(Cell::new(r, disk)));
        }
    }
    std::fs::write(disk_path(dir, disk), &buf)
}

/// Read the surviving disks into stripes; missing disks' cells are zeroed
/// and reported. Returns `(stripes, alive)`.
pub fn read_disks(
    dir: &Path,
    meta: &ArrayMeta,
    layout: &CodeLayout,
) -> io::Result<(Vec<Stripe>, Vec<bool>)> {
    let alive = scan_disks(dir, meta, layout);
    let mut stripes: Vec<Stripe> = (0..meta.stripes)
        .map(|_| Stripe::zeroed(layout, meta.block))
        .collect();
    for (d, &ok) in alive.iter().enumerate() {
        if !ok {
            continue;
        }
        let buf = std::fs::read(disk_path(dir, d))?;
        let mut off = 0;
        for stripe in &mut stripes {
            for r in 0..layout.rows() {
                stripe
                    .block_mut(Cell::new(r, d))
                    .copy_from_slice(&buf[off..off + meta.block]);
                off += meta.block;
            }
        }
    }
    Ok((stripes, alive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ArrayMeta;
    use dcode_baselines::registry::CodeId;
    use dcode_codec::encode;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcode-diskio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_files_roundtrip() {
        let dir = tmpdir("roundtrip");
        let meta = ArrayMeta {
            code: CodeId::DCode,
            p: 5,
            block: 64,
            stripes: 2,
            payload_len: 0,
        };
        let layout = layout_of(&meta);
        let mut stripes: Vec<Stripe> = (0..2)
            .map(|k| {
                let payload: Vec<u8> = (0..layout.data_len() * 64)
                    .map(|i| ((i + k * 7) % 251) as u8)
                    .collect();
                let mut s = Stripe::from_data(&layout, 64, &payload);
                encode(&layout, &mut s);
                s
            })
            .collect();
        write_disks(&dir, &meta, &layout, &stripes).unwrap();
        let (loaded, alive) = read_disks(&dir, &meta, &layout).unwrap();
        assert!(alive.iter().all(|&a| a));
        assert_eq!(loaded, stripes);

        // Kill one disk file: scan notices, load zeroes it.
        std::fs::remove_file(disk_path(&dir, 3)).unwrap();
        let (loaded, alive) = read_disks(&dir, &meta, &layout).unwrap();
        assert!(!alive[3]);
        stripes.iter_mut().for_each(|s| s.erase_columns(&[3]));
        assert_eq!(loaded, stripes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_counts_as_dead() {
        let dir = tmpdir("trunc");
        let meta = ArrayMeta {
            code: CodeId::XCode,
            p: 5,
            block: 32,
            stripes: 1,
            payload_len: 0,
        };
        let layout = layout_of(&meta);
        let stripes = vec![Stripe::zeroed(&layout, 32)];
        write_disks(&dir, &meta, &layout, &stripes).unwrap();
        std::fs::write(disk_path(&dir, 1), b"short").unwrap();
        let alive = scan_disks(&dir, &meta, &layout);
        assert!(!alive[1]);
        assert!(alive[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
