//! Disk-file I/O: each simulated disk is one file `disk_<i>.bin` holding
//! that column's blocks for every stripe, in stripe order.
//!
//! Writes stream stripe-by-stripe through a [`FileBackend`] — the process
//! never materializes a whole disk image, so storing a large payload
//! needs one stripe of memory, not one disk of memory.

use crate::meta::ArrayMeta;
use dcode_baselines::registry::build;
use dcode_codec::Stripe;
use dcode_core::grid::Cell;
use dcode_core::layout::CodeLayout;
use dcode_faults::{DiskBackend, FileBackend};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Path of disk `i` inside the array directory.
pub fn disk_path(dir: &Path, disk: usize) -> PathBuf {
    dir.join(format!("disk_{disk}.bin"))
}

/// Build the layout described by the metadata.
pub fn layout_of(meta: &ArrayMeta) -> CodeLayout {
    build(meta.code, meta.p).expect("metadata was validated at creation")
}

/// Blocks per disk file: the data region plus the journal tail.
pub fn disk_blocks(meta: &ArrayMeta, layout: &CodeLayout) -> usize {
    meta.stripes * layout.rows() + meta.journal
}

/// Expected byte length of each disk file (journal region included).
pub fn disk_file_len(meta: &ArrayMeta, layout: &CodeLayout) -> usize {
    disk_blocks(meta, layout) * meta.block
}

/// What a per-disk health probe found.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskProbe {
    /// File exists with exactly the expected length.
    Present,
    /// File does not exist (killed or never written).
    Missing,
    /// File exists but is shorter than expected — a torn or interrupted
    /// write, or an aborted rebuild.
    Truncated {
        /// Bytes on disk.
        actual: u64,
        /// Bytes expected.
        expected: u64,
    },
    /// File exists but is longer than expected — metadata mismatch or a
    /// foreign file squatting on the disk's name.
    Oversized {
        /// Bytes on disk.
        actual: u64,
        /// Bytes expected.
        expected: u64,
    },
}

impl DiskProbe {
    /// Whether the disk is usable as-is.
    pub fn is_present(self) -> bool {
        self == DiskProbe::Present
    }
}

impl fmt::Display for DiskProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DiskProbe::Present => f.write_str("ok"),
            DiskProbe::Missing => f.write_str("missing"),
            DiskProbe::Truncated { actual, expected } => {
                write!(f, "TRUNCATED ({actual} of {expected} bytes)")
            }
            DiskProbe::Oversized { actual, expected } => {
                write!(f, "SIZE MISMATCH ({actual} bytes, expected {expected})")
            }
        }
    }
}

/// Probe every disk file: missing / truncated / oversized / ok, so status
/// output can say *why* a disk is unusable instead of silently treating a
/// half-written file as absent.
pub fn probe_disks(dir: &Path, meta: &ArrayMeta, layout: &CodeLayout) -> Vec<DiskProbe> {
    let expected = disk_file_len(meta, layout) as u64;
    (0..layout.disks())
        .map(|d| match std::fs::metadata(disk_path(dir, d)) {
            Err(_) => DiskProbe::Missing,
            Ok(m) => {
                let actual = m.len();
                if actual == expected {
                    DiskProbe::Present
                } else if actual < expected {
                    DiskProbe::Truncated { actual, expected }
                } else {
                    DiskProbe::Oversized { actual, expected }
                }
            }
        })
        .collect()
}

/// Which disks are currently readable (file exists with the right length).
pub fn scan_disks(dir: &Path, meta: &ArrayMeta, layout: &CodeLayout) -> Vec<bool> {
    probe_disks(dir, meta, layout)
        .into_iter()
        .map(DiskProbe::is_present)
        .collect()
}

fn disk_err(e: dcode_faults::DiskError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Write all stripes out as per-disk files, streaming block-by-block
/// through a [`FileBackend`] — no whole-disk image is ever buffered.
pub fn write_disks(
    dir: &Path,
    meta: &ArrayMeta,
    layout: &CodeLayout,
    stripes: &[Stripe],
) -> io::Result<()> {
    let rows = layout.rows();
    // `create` zero-fills, so the journal tail past the stripes decodes
    // as all-empty record slots (a cleanly shut-down journal).
    let mut backend =
        FileBackend::create(dir, layout.disks(), disk_blocks(meta, layout), meta.block)?;
    for (t, stripe) in stripes.iter().enumerate() {
        for d in 0..layout.disks() {
            for r in 0..rows {
                backend
                    .write_block(d, t * rows + r, stripe.block(Cell::new(r, d)))
                    .map_err(disk_err)?;
            }
        }
    }
    for d in 0..layout.disks() {
        backend.flush(d).map_err(disk_err)?;
    }
    Ok(())
}

/// Write a single disk's file from in-memory stripes (after a rebuild),
/// streaming one block at a time.
pub fn write_one_disk(
    dir: &Path,
    meta: &ArrayMeta,
    layout: &CodeLayout,
    stripes: &[Stripe],
    disk: usize,
) -> io::Result<()> {
    use std::io::Write;
    let f = std::fs::File::create(disk_path(dir, disk))?;
    let mut w = std::io::BufWriter::new(f);
    for stripe in stripes {
        for r in 0..layout.rows() {
            w.write_all(stripe.block(Cell::new(r, disk)))?;
        }
    }
    // Zero journal tail: a rebuilt disk's record slots start out vacated.
    let zeros = vec![0u8; meta.block];
    for _ in 0..meta.journal {
        w.write_all(&zeros)?;
    }
    w.into_inner()?.sync_data()
}

/// Read the surviving disks into stripes; missing disks' cells are zeroed
/// and reported. Returns `(stripes, alive)`.
pub fn read_disks(
    dir: &Path,
    meta: &ArrayMeta,
    layout: &CodeLayout,
) -> io::Result<(Vec<Stripe>, Vec<bool>)> {
    let alive = scan_disks(dir, meta, layout);
    let mut stripes: Vec<Stripe> = (0..meta.stripes)
        .map(|_| Stripe::zeroed(layout, meta.block))
        .collect();
    for (d, &ok) in alive.iter().enumerate() {
        if !ok {
            continue;
        }
        let buf = std::fs::read(disk_path(dir, d))?;
        let mut off = 0;
        for stripe in &mut stripes {
            for r in 0..layout.rows() {
                stripe
                    .block_mut(Cell::new(r, d))
                    .copy_from_slice(&buf[off..off + meta.block]);
                off += meta.block;
            }
        }
    }
    Ok((stripes, alive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ArrayMeta;
    use dcode_baselines::registry::CodeId;
    use dcode_codec::encode;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcode-diskio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_files_roundtrip() {
        let dir = tmpdir("roundtrip");
        let meta = ArrayMeta {
            code: CodeId::DCode,
            p: 5,
            block: 64,
            stripes: 2,
            payload_len: 0,
            journal: 3,
        };
        let layout = layout_of(&meta);
        let mut stripes: Vec<Stripe> = (0..2)
            .map(|k| {
                let payload: Vec<u8> = (0..layout.data_len() * 64)
                    .map(|i| ((i + k * 7) % 251) as u8)
                    .collect();
                let mut s = Stripe::from_data(&layout, 64, &payload);
                encode(&layout, &mut s);
                s
            })
            .collect();
        write_disks(&dir, &meta, &layout, &stripes).unwrap();
        let (loaded, alive) = read_disks(&dir, &meta, &layout).unwrap();
        assert!(alive.iter().all(|&a| a));
        assert_eq!(loaded, stripes);

        // Kill one disk file: scan notices, load zeroes it.
        std::fs::remove_file(disk_path(&dir, 3)).unwrap();
        let (loaded, alive) = read_disks(&dir, &meta, &layout).unwrap();
        assert!(!alive[3]);
        stripes.iter_mut().for_each(|s| s.erase_columns(&[3]));
        assert_eq!(loaded, stripes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_counts_as_dead() {
        let dir = tmpdir("trunc");
        let meta = ArrayMeta {
            code: CodeId::XCode,
            p: 5,
            block: 32,
            stripes: 1,
            payload_len: 0,
            journal: 0,
        };
        let layout = layout_of(&meta);
        let stripes = vec![Stripe::zeroed(&layout, 32)];
        write_disks(&dir, &meta, &layout, &stripes).unwrap();
        std::fs::write(disk_path(&dir, 1), b"short").unwrap();
        let alive = scan_disks(&dir, &meta, &layout);
        assert!(!alive[1]);
        assert!(alive[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
