//! The CLI's operations, as library functions so they are directly
//! testable. Each takes the array directory and returns a human-readable
//! summary on success.

use crate::diskio::{
    disk_blocks, disk_path, layout_of, probe_disks, read_disks, write_disks, write_one_disk,
};
use crate::meta::ArrayMeta;
use dcode_array::chaos::{soak, ChaosConfig};
use dcode_array::crashsim::{sweep, CrashSimConfig};
use dcode_array::scrub::{scrub_stripe, scrub_stripe_dry, ScrubReport};
use dcode_array::{journal_blocks_per_disk, scan_journal, JournalMutation, JournalSpec};
use dcode_baselines::registry::CodeId;
use dcode_codec::{apply_plan, encode_payload, verify_parities, Stripe};
use dcode_core::decoder::plan_column_recovery;
use dcode_core::layout::CodeLayout;
use std::fmt;
use std::path::Path;

/// CLI operation errors.
#[derive(Debug)]
pub enum CliError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Metadata problems.
    Meta(crate::meta::MetaError),
    /// The requested operation is impossible in the array's current state.
    State(String),
    /// Bad user input.
    Usage(String),
    /// Scrub found corruption it cannot localize to one cell or one
    /// unique pair — operator intervention needed (restore from fetch +
    /// store).
    Ambiguous(String),
    /// A dry-run scrub found corruption it was not allowed to repair.
    Corrupt(String),
}

impl CliError {
    /// Process exit code: scripts can branch on *why* the CLI failed.
    /// 1 = I/O or metadata, 2 = usage, 3 = array state, 4 = ambiguous
    /// corruption, 5 = corruption found in dry-run mode.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Io(_) | CliError::Meta(_) => 1,
            CliError::Usage(_) => 2,
            CliError::State(_) => 3,
            CliError::Ambiguous(_) => 4,
            CliError::Corrupt(_) => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Meta(e) => write!(f, "{e}"),
            CliError::State(s) | CliError::Usage(s) | CliError::Corrupt(s) => f.write_str(s),
            CliError::Ambiguous(s) => write!(
                f,
                "{s}
the syndrome does not localize the corruption; nothing was modified —                  restore the payload with `fetch` and re-`store` it"
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<crate::meta::MetaError> for CliError {
    fn from(e: crate::meta::MetaError) -> Self {
        CliError::Meta(e)
    }
}

/// `store`: stripe `input` across disk files in `dir` with the given code.
pub fn store(
    input: &Path,
    dir: &Path,
    code: CodeId,
    p: usize,
    block: usize,
) -> Result<String, CliError> {
    let payload = std::fs::read(input)?;
    let layout = dcode_baselines::registry::build(code, p)
        .map_err(|e| CliError::Usage(format!("cannot build {} at p={p}: {e}", code.name())))?;
    if block == 0 {
        return Err(CliError::Usage("block size must be positive".into()));
    }
    let per_stripe = layout.data_len() * block;
    let stripes_needed = payload.len().div_ceil(per_stripe).max(1);
    std::fs::create_dir_all(dir)?;

    let meta = ArrayMeta {
        code,
        p,
        block,
        stripes: stripes_needed,
        payload_len: payload.len(),
        // Reserve a journal region so the array's geometry matches the
        // journaled mount path; blocks below the record-header minimum
        // get none. The region starts zeroed (all slots empty).
        journal: if block >= 32 {
            journal_blocks_per_disk(&layout, block)
        } else {
            0
        },
    };
    // One cached compile + the persistent pool for the whole batch, instead
    // of a schedule compile (or even a cache lookup) per stripe.
    let stripes = encode_payload(&layout, block, &payload, 8);
    write_disks(dir, &meta, &layout, &stripes)?;
    meta.save(dir)?;
    Ok(format!(
        "stored {} bytes as {} stripe(s) of {} over {} disks ({} + 2 parity rows each)",
        payload.len(),
        stripes_needed,
        code.name(),
        layout.disks(),
        layout.rows() - 2
    ))
}

/// Load the array, reconstructing up to two dead disks in memory.
/// Returns `(meta, layout, stripes, alive)` with every stripe fully intact.
fn load_recovered(
    dir: &Path,
) -> Result<
    (
        ArrayMeta,
        dcode_core::layout::CodeLayout,
        Vec<Stripe>,
        Vec<bool>,
    ),
    CliError,
> {
    let meta = ArrayMeta::load(dir)?;
    let layout = layout_of(&meta);
    let (mut stripes, alive) = read_disks(dir, &meta, &layout)?;
    let dead: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| !a)
        .map(|(d, _)| d)
        .collect();
    if dead.len() > 2 {
        return Err(CliError::State(format!(
            "{} disks are dead ({dead:?}); RAID-6 tolerates at most 2",
            dead.len()
        )));
    }
    if !dead.is_empty() {
        let plan = plan_column_recovery(&layout, &dead)
            .map_err(|e| CliError::State(format!("unrecoverable: {e}")))?;
        for s in &mut stripes {
            apply_plan(s, &plan);
        }
    }
    Ok((meta, layout, stripes, alive))
}

/// `fetch`: reassemble the payload (through up to two dead disks) into
/// `output`.
pub fn fetch(dir: &Path, output: &Path) -> Result<String, CliError> {
    let (meta, layout, stripes, alive) = load_recovered(dir)?;
    let mut payload = Vec::with_capacity(meta.payload_len);
    for s in &stripes {
        payload.extend_from_slice(&s.data_bytes(&layout));
    }
    payload.truncate(meta.payload_len);
    std::fs::write(output, &payload)?;
    let dead = alive.iter().filter(|&&a| !a).count();
    Ok(format!(
        "fetched {} bytes{}",
        payload.len(),
        if dead > 0 {
            format!(" (reconstructed through {dead} dead disk(s))")
        } else {
            String::new()
        }
    ))
}

/// `status`: health and consistency summary.
pub fn status(dir: &Path) -> Result<String, CliError> {
    let meta = ArrayMeta::load(dir)?;
    let layout = layout_of(&meta);
    let probes = probe_disks(dir, &meta, &layout);
    let (stripes, alive) = read_disks(dir, &meta, &layout)?;
    let dead: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| !a)
        .map(|(d, _)| d)
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "code: {} (p={}, {} disks, {} rows)\nblock: {} bytes, stripes: {}, payload: {} bytes\n",
        meta.code.name(),
        meta.p,
        layout.disks(),
        layout.rows(),
        meta.block,
        meta.stripes,
        meta.payload_len
    ));
    if dead.is_empty() {
        let consistent = stripes.iter().all(|s| verify_parities(&layout, s));
        out.push_str(&format!(
            "disks: all {} healthy; parity {}\n",
            layout.disks(),
            if consistent {
                "consistent"
            } else {
                "INCONSISTENT (run scrub)"
            }
        ));
    } else {
        out.push_str(&format!(
            "disks: {} healthy, DEAD: {dead:?} ({})\n",
            layout.disks() - dead.len(),
            if dead.len() <= 2 {
                "recoverable — run rebuild"
            } else {
                "DATA LOSS"
            }
        ));
    }
    for (d, probe) in probes.iter().enumerate() {
        out.push_str(&format!("  disk {d}: {probe}\n"));
    }
    out.push_str(&journal_status(dir, &meta, &layout, &dead));
    let cache = dcode_codec::schedule_stats();
    out.push_str(&format!(
        "schedule cache: {} hit(s) / {} miss(es) (this process)\n",
        cache.hits, cache.misses
    ));
    Ok(out)
}

/// The parity-intent-journal lines of `status`: region geometry, a live
/// scan of the record slots, and the persisted mount state (mount count,
/// last replay outcome). Read-only — the scan never modifies the medium.
fn journal_status(dir: &Path, meta: &ArrayMeta, layout: &CodeLayout, dead: &[usize]) -> String {
    if meta.journal == 0 {
        return "journal: none (array predates journaling or block too small)\n".into();
    }
    let region_bytes = meta.journal * meta.block;
    let mut out = format!(
        "journal: {} block(s)/disk ({} bytes/disk, {} bytes total)\n",
        meta.journal,
        region_bytes,
        region_bytes * layout.disks()
    );
    if !dead.is_empty() {
        out.push_str("  not scanned: dead disks present (rebuild first)\n");
        return out;
    }
    let spec = JournalSpec::for_geometry(layout, meta.block, meta.stripes);
    let mut backend = match dcode_faults::FileBackend::open(
        dir,
        layout.disks(),
        disk_blocks(meta, layout),
        meta.block,
    ) {
        Ok(b) => b,
        Err(e) => {
            out.push_str(&format!("  not scanned: {e}\n"));
            return out;
        }
    };
    let scan = scan_journal(&mut backend, &spec);
    out.push_str(&format!(
        "  records: {} live, {} retired, {} torn, {} empty slot(s)\n",
        scan.live.len(),
        scan.tombstones,
        scan.torn,
        scan.empty
    ));
    for &(disk, seq, stripe) in &scan.live {
        out.push_str(&format!(
            "    LIVE record seq {seq} on disk {disk} (stripe {stripe}) — will replay on attach\n"
        ));
    }
    match scan.state {
        Some(state) => out.push_str(&format!(
            "  mounts: {}, last replay: {} ({} scanned, {} replayed, {} discarded)\n",
            state.mounts,
            state.last.outcome.name(),
            state.last.scanned,
            state.last.replayed,
            state.last.discarded
        )),
        None => out.push_str("  mounts: never mounted through the journaled path\n"),
    }
    out
}

/// `kill`: make a disk fail by deleting its file.
pub fn kill(dir: &Path, disk: usize) -> Result<String, CliError> {
    let meta = ArrayMeta::load(dir)?;
    let layout = layout_of(&meta);
    if disk >= layout.disks() {
        return Err(CliError::Usage(format!(
            "disk {disk} out of range (array has {} disks)",
            layout.disks()
        )));
    }
    let path = disk_path(dir, disk);
    if !path.exists() {
        return Err(CliError::State(format!("disk {disk} is already dead")));
    }
    std::fs::remove_file(path)?;
    Ok(format!("disk {disk} killed"))
}

/// `rebuild`: reconstruct every dead disk and rewrite its file.
pub fn rebuild(dir: &Path) -> Result<String, CliError> {
    let (meta, layout, stripes, alive) = load_recovered(dir)?;
    let dead: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter(|&(_, &a)| !a)
        .map(|(d, _)| d)
        .collect();
    if dead.is_empty() {
        return Ok("all disks healthy; nothing to rebuild".into());
    }
    for &d in &dead {
        write_one_disk(dir, &meta, &layout, &stripes, d)?;
    }
    Ok(format!(
        "rebuilt disk(s) {dead:?} across {} stripe(s)",
        meta.stripes
    ))
}

/// `layout`: print a code's element map, complexity metrics, and textual
/// spec (parseable back via `dcode_core::spec::parse_spec`).
pub fn layout(code: CodeId, p: usize) -> Result<String, CliError> {
    let l = dcode_baselines::registry::build(code, p)
        .map_err(|e| CliError::Usage(format!("cannot build {} at p={p}: {e}", code.name())))?;
    let m = dcode_core::metrics::measure(&l);
    let mut out = dcode_core::render::render_kinds_map(&l);
    out.push_str(&format!(
        "\n{} disks · {} data + {} parity elements · rate {:.3}\n\
         encode {:.3} XOR/element · decode {:.3} XOR/lost · update avg {:.2}\n\n",
        m.disks,
        m.data_elements,
        m.parity_elements,
        m.storage_rate,
        m.encode_xors_per_data_element,
        m.decode_xors_per_lost_element,
        m.avg_update_complexity
    ));
    out.push_str(&dcode_core::spec::format_spec(&l));
    Ok(out)
}

/// Primes the `verify` command sweeps under `--all` (the paper's set plus
/// one beyond, matching the static-verification issue's bar).
const VERIFY_PRIMES: [usize; 5] = [5, 7, 11, 13, 17];

/// `verify`: statically prove the compiled schedules of one code (or the
/// whole registry) correct — MDS by GF(2) rank, symbolic encode
/// equivalence, hazard-free dependency levels, symbolically-correct
/// recovery for every 2-column erasure, and fused batch programs proved
/// stripe-confined and equal to N copies of the single-stripe generator.
/// Any diagnostic is a hard failure, which is how the CI `verify` job
/// uses it.
pub fn verify(code: Option<CodeId>, p: Option<usize>, all: bool) -> Result<String, CliError> {
    let targets: Vec<(CodeId, usize)> = if all {
        dcode_baselines::registry::ALL_CODES
            .iter()
            .flat_map(|&id| VERIFY_PRIMES.iter().map(move |&p| (id, p)))
            .collect()
    } else {
        let code = code.ok_or_else(|| {
            CliError::Usage("verify needs --code NAME (or --all for the whole registry)".into())
        })?;
        vec![(code, p.unwrap_or(7))]
    };

    let mut out = String::new();
    let mut failing = 0usize;
    for (id, p) in targets {
        let layout = dcode_baselines::registry::build(id, p)
            .map_err(|e| CliError::Usage(format!("cannot build {} at p={p}: {e}", id.name())))?;
        let report = dcode_verify::verify_layout(&layout);
        out.push_str(&report.to_string());
        out.push('\n');
        for d in &report.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        if !report.is_clean() {
            failing += 1;
        }
    }
    if failing > 0 {
        return Err(CliError::State(format!(
            "{out}verification FAILED for {failing} code/prime combination(s)"
        )));
    }
    out.push_str(
        "all programs verified: symbolically equivalent (fused batches included), hazard-free, lint-clean",
    );
    Ok(out)
}

/// `analyze`: static cost, I/O-footprint, critical-path, and peephole
/// analysis of the compiled schedules of one code (or the whole registry
/// over [`VERIFY_PRIMES`]), with the measurements checked against the
/// paper's closed-form claims. With `--assert-claims` any claim miss or
/// lint finding is a hard failure (exit code 3) — how the CI `analyze`
/// job uses it. With `--json` the reports render as a JSON array; on an
/// asserted failure the JSON still goes to stdout so a piped CI artifact
/// survives the failing exit.
///
/// With `--opt-delta` every target also gets the optimizer's per-scope
/// cost-delta certificate table ([`dcode_analyze::opt_delta`]). A
/// violated certificate — an equivalence miss, a regressed metric, or a
/// nonzero delta on a registry code — is *always* a hard failure (exit
/// code 3), with or without `--assert-claims`: the certificates are the
/// optimizer's standing regression tripwire, not an opt-in claim. Under
/// `--json` the output becomes `{"reports": [...], "opt_delta": [...]}`.
pub fn analyze(
    code: Option<CodeId>,
    p: Option<usize>,
    all: bool,
    assert_claims: bool,
    json: bool,
    opt_delta: bool,
) -> Result<String, CliError> {
    let targets: Vec<(CodeId, usize)> = if all {
        dcode_baselines::registry::ALL_CODES
            .iter()
            .flat_map(|&id| VERIFY_PRIMES.iter().map(move |&p| (id, p)))
            .collect()
    } else {
        let code = code.ok_or_else(|| {
            CliError::Usage("analyze needs --code NAME (or --all for the whole registry)".into())
        })?;
        vec![(code, p.unwrap_or(7))]
    };

    let mut reports = Vec::new();
    let mut deltas = Vec::new();
    for (id, p) in targets {
        let layout = dcode_baselines::registry::build(id, p)
            .map_err(|e| CliError::Usage(format!("cannot build {} at p={p}: {e}", id.name())))?;
        reports.push(dcode_analyze::analyze_layout(&layout));
        if opt_delta {
            deltas.push(dcode_analyze::opt_delta(&layout));
        }
    }
    let dirty: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| format!("{} p={}", r.code, r.p))
        .collect();
    let delta_dirty: Vec<String> = deltas
        .iter()
        .filter(|d| !d.is_clean())
        .map(|d| format!("{} p={}", d.code, d.p))
        .collect();

    let body = if json {
        let items: Vec<String> = reports
            .iter()
            .map(dcode_analyze::AnalysisReport::to_json)
            .collect();
        let reports_json = format!("[{}]", items.join(",\n "));
        if opt_delta {
            let items: Vec<String> = deltas
                .iter()
                .map(dcode_analyze::OptDeltaReport::to_json)
                .collect();
            format!(
                "{{\"reports\": {reports_json}, \"opt_delta\": [{}]}}",
                items.join(",\n ")
            )
        } else {
            reports_json
        }
    } else {
        let mut s = reports
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        for d in &deltas {
            s.push('\n');
            s.push_str(&d.to_string());
        }
        s.push_str(&format!(
            "\n{} report(s): {} clean, {} not clean",
            reports.len(),
            reports.len() - dirty.len(),
            dirty.len()
        ));
        if opt_delta {
            s.push_str(&format!(
                "; {} opt-delta table(s): {} certified, {} violated",
                deltas.len(),
                deltas.len() - delta_dirty.len(),
                delta_dirty.len()
            ));
        }
        s
    };
    // A violated optimizer certificate fails the run unconditionally —
    // the delta-0 tripwire is not an opt-in claim.
    if !delta_dirty.is_empty() {
        if json {
            println!("{body}");
        }
        return Err(CliError::State(format!(
            "{}optimizer certificates VIOLATED for {} report(s): {}",
            if json {
                String::new()
            } else {
                format!("{body}\n")
            },
            delta_dirty.len(),
            delta_dirty.join(", ")
        )));
    }
    if assert_claims && !dirty.is_empty() {
        if json {
            println!("{body}");
        }
        return Err(CliError::State(format!(
            "{}analysis FAILED for {} report(s): {}",
            if json {
                String::new()
            } else {
                format!("{body}\n")
            },
            dirty.len(),
            dirty.join(", ")
        )));
    }
    Ok(body)
}

/// `race`: model-check the workspace's concurrency invariants (worker
/// pool, schedule cache, shard queue/worker) under minisim's
/// deterministic scheduler, run the mutation self-tests that prove the
/// checker catches seeded bugs, and report the lock-order discipline
/// observed by the registry. `all` switches to the deep exploration
/// budget (every invariant must clear the interleaving floor); `json`
/// emits the machine-readable report. A violation, an uncaught
/// mutation, or a lock-order cycle exits 3.
pub fn race(all: bool, json: bool) -> Result<String, CliError> {
    let report = dcode_race::run_all(all);
    let body = if json {
        report.to_json()
    } else {
        report.to_string()
    };
    if report.passed() {
        return Ok(body);
    }
    if json {
        // Machine consumers still get the full report on stdout; the
        // failure summary goes to stderr via the error path.
        println!("{body}");
    }
    Err(CliError::State(format!(
        "{}race check FAILED: {}",
        if json {
            String::new()
        } else {
            format!("{body}\n")
        },
        report.failures().join("; ")
    )))
}

/// `scrub`: verify every stripe's parities, localizing and repairing
/// single- and pair-element silent corruption. With `repair` off nothing
/// is written — the diagnosis reports what a repairing scrub *would* do,
/// and finding corruption is itself an error (exit code 5) so scripted
/// health checks can branch on it. Unlocalizable corruption is an
/// [`CliError::Ambiguous`] error (exit code 4) in both modes.
pub fn scrub(dir: &Path, repair: bool) -> Result<String, CliError> {
    let meta = ArrayMeta::load(dir)?;
    let layout = layout_of(&meta);
    let (mut stripes, alive) = read_disks(dir, &meta, &layout)?;
    if alive.iter().any(|&a| !a) {
        return Err(CliError::State(
            "scrub requires all disks present; rebuild first".into(),
        ));
    }
    let mut clean = 0usize;
    let mut repaired = Vec::new();
    let mut ambiguous = Vec::new();
    for (idx, s) in stripes.iter_mut().enumerate() {
        let report = if repair {
            scrub_stripe(&layout, s)
        } else {
            scrub_stripe_dry(&layout, s)
        };
        match report {
            ScrubReport::Clean => clean += 1,
            ScrubReport::Repaired { cell } => repaired.push((idx, cell)),
            ScrubReport::RepairedPair { cells } => {
                repaired.push((idx, cells[0]));
                repaired.push((idx, cells[1]));
            }
            ScrubReport::Ambiguous { .. } => ambiguous.push(idx),
        }
    }
    if repair && !repaired.is_empty() {
        write_disks(dir, &meta, &layout, &stripes)?;
    }
    let mut out = format!("{clean}/{} stripes clean", meta.stripes);
    if !repaired.is_empty() {
        out.push_str(&if repair {
            format!("; repaired {repaired:?}")
        } else {
            format!("; would repair {repaired:?} (dry run, nothing written)")
        });
    }
    if !ambiguous.is_empty() {
        return Err(CliError::Ambiguous(format!(
            "{out}; stripes {ambiguous:?} have multi-element corruption"
        )));
    }
    if !repair && !repaired.is_empty() {
        return Err(CliError::Corrupt(format!(
            "{out} — re-run with --repair on to fix"
        )));
    }
    Ok(out)
}

/// Codes the `chaos` command soaks when none is named: the paper's code
/// plus the two classic horizontal baselines.
const CHAOS_CODES: [(CodeId, usize); 3] =
    [(CodeId::DCode, 7), (CodeId::Rdp, 7), (CodeId::EvenOdd, 7)];

/// `chaos`: replay a seeded randomized op/fault schedule against an
/// in-memory array mirrored by an oracle, asserting zero data loss within
/// RAID-6 tolerance. Every run exercises retries, checksum catches,
/// degraded reads, an auto-failed slot, hot-spare attach, and a completed
/// rebuild; the counters are printed per code.
pub fn chaos(seed: u64, ops: usize, target: Option<(CodeId, usize)>) -> Result<String, CliError> {
    if ops < 100 {
        return Err(CliError::Usage(
            "chaos needs --ops >= 100 to fit the scheduled fault events".into(),
        ));
    }
    let targets: Vec<(CodeId, usize)> = match target {
        Some(t) => vec![t],
        None => CHAOS_CODES.to_vec(),
    };
    let mut out = String::new();
    let mut failed = 0usize;
    for (id, p) in targets {
        let layout = dcode_baselines::registry::build(id, p)
            .map_err(|e| CliError::Usage(format!("cannot build {} at p={p}: {e}", id.name())))?;
        let report = soak(layout, &ChaosConfig::new(seed, ops));
        if !report.passed() {
            failed += 1;
        }
        out.push_str(&report.to_string());
        out.push('\n');
    }
    if failed > 0 {
        return Err(CliError::State(format!(
            "{out}chaos soak FAILED for {failed} code(s)"
        )));
    }
    out.push_str("chaos soak passed: zero data loss, all headline fault paths exercised");
    Ok(out)
}

/// Codes the `crash-sim` sweep covers under `--all`: the paper's code and
/// the two classic horizontal baselines, each at both sweep primes.
const CRASH_SIM_CODES: [CodeId; 3] = [CodeId::DCode, CodeId::Rdp, CodeId::EvenOdd];

/// Primes the `--all` crash sweep runs each code at.
const CRASH_SIM_PRIMES: [usize; 2] = [5, 7];

/// `crash-sim`: the exhaustive write-hole crash sweep. Every write-path
/// operation is crashed at every backend-write index, power-cycled
/// (dropping un-flushed volatile-cache writes), remounted through the
/// journaled attach, and verified: no acknowledged write lost, no
/// parity-inconsistent stripe. Any failure is replayable from
/// `(op, crash index, seed)` and exits 3. `--all` sweeps the registry
/// codes at p ∈ {5, 7}; `--mutate` plants a retire-before-parity ordering
/// bug and *requires* the sweep to catch it (the harness's self-test);
/// `--json` emits the CI artifact format (printed even on failure so a
/// piped artifact survives the failing exit).
pub fn crash_sim(seed: u64, all: bool, json: bool, mutate: bool) -> Result<String, CliError> {
    let targets: Vec<(CodeId, usize)> = if all {
        CRASH_SIM_CODES
            .iter()
            .flat_map(|&id| CRASH_SIM_PRIMES.iter().map(move |&p| (id, p)))
            .collect()
    } else {
        vec![(CodeId::DCode, 5)]
    };
    let mut items = Vec::new();
    let mut lines = String::new();
    let mut failed = Vec::new();
    for (id, p) in targets {
        let layout = dcode_baselines::registry::build(id, p)
            .map_err(|e| CliError::Usage(format!("cannot build {} at p={p}: {e}", id.name())))?;
        let mut cfg = CrashSimConfig::new(layout, seed);
        if mutate {
            cfg.mutation = Some(JournalMutation::RetireBeforeParity);
        }
        let report = sweep(&cfg);
        if !report.passed() {
            failed.push(format!("{} p={p}", id.name()));
        }
        lines.push_str(&format!(
            "{} p={p}: {} crash point(s), {} replay(s), {} failure(s) — {}\n",
            id.name(),
            report.crash_points,
            report.replays,
            report.failures.len(),
            if report.passed() { "ok" } else { "FAILED" }
        ));
        for f in &report.failures {
            lines.push_str(&format!(
                "  {} crashed at write {} (seed {}): {}\n",
                f.op, f.crash_at, f.seed, f.detail
            ));
        }
        items.push(format!(
            "{{\"code\":\"{}\",\"p\":{p},\"report\":{}}}",
            id.name(),
            report.to_json()
        ));
    }
    let body = if json {
        format!("[{}]", items.join(",\n "))
    } else {
        let verdict = if mutate {
            "mutated sweep caught the planted write hole"
        } else {
            "crash sweep clean: every crash point remounts with zero acked-write \
             loss and zero parity-inconsistent stripes"
        };
        format!("{lines}{verdict}")
    };
    if !failed.is_empty() {
        if json {
            println!("{body}");
        }
        return Err(CliError::State(format!(
            "{}crash sweep FAILED for {}: {}",
            if json {
                String::new()
            } else {
                format!("{lines}\n")
            },
            failed.len(),
            failed.join(", ")
        )));
    }
    Ok(body)
}

/// Options for the `serve` command (bundled: the flag surface is wide).
pub struct ServeOpts {
    /// Code each shard runs.
    pub code: CodeId,
    /// The code's prime parameter.
    pub p: usize,
    /// Number of shards (subdirectories `shard_<i>` under the array dir).
    pub shards: usize,
    /// TCP port (0 = ephemeral, printed on startup).
    pub port: u16,
    /// Bytes per element block.
    pub block: usize,
    /// Stripes per shard.
    pub stripes: usize,
    /// Bounded queue capacity per shard.
    pub queue_cap: usize,
    /// Concurrent-connection cap.
    pub conns: usize,
}

/// `serve`: run the sharded TCP object server over file-backed shard
/// directories under `dir`, then block until the process is killed. A
/// fresh directory is formatted; an existing one (every `shard_<i>`
/// present) is re-attached, so a restarted server finds its objects.
pub fn serve(dir: &Path, opts: &ServeOpts) -> Result<String, CliError> {
    use dcode_server::{Server, ServerConfig, ShardBackend, ShardConfig};

    let layout = dcode_baselines::registry::build(opts.code, opts.p).map_err(|e| {
        CliError::Usage(format!(
            "cannot build {} at p={}: {e}",
            opts.code.name(),
            opts.p
        ))
    })?;
    if opts.shards == 0 || opts.block == 0 || opts.stripes == 0 {
        return Err(CliError::Usage(
            "--shards, --block and --stripes must be positive".into(),
        ));
    }
    std::fs::create_dir_all(dir)?;
    let shard_cfg = ShardConfig {
        layout,
        block_size: opts.block,
        stripes: opts.stripes,
        queue_cap: opts.queue_cap,
        ..ShardConfig::default()
    };
    // Data region plus the parity-intent journal tail each shard's
    // journaled array expects.
    let blocks = dcode_server::shard_blocks(&shard_cfg);
    let existing = (0..opts.shards)
        .filter(|i| {
            dir.join(format!("shard_{i}"))
                .join(dcode_faults::disk_file_name(0))
                .exists()
        })
        .count();
    let fresh = match existing {
        0 => true,
        n if n == opts.shards => false,
        n => {
            return Err(CliError::State(format!(
                "{n} of {} shard dirs exist under {} — refusing to mix fresh and existing shards",
                opts.shards,
                dir.display()
            )))
        }
    };
    let disks = shard_cfg.layout.disks();
    let mut backends: Vec<ShardBackend> = Vec::with_capacity(opts.shards);
    for i in 0..opts.shards {
        let shard_dir = dir.join(format!("shard_{i}"));
        std::fs::create_dir_all(&shard_dir)?;
        let backend = if fresh {
            dcode_faults::FileBackend::create(&shard_dir, disks, blocks, opts.block)?
        } else {
            dcode_faults::FileBackend::open(&shard_dir, disks, blocks, opts.block)?
        };
        backends.push(Box::new(backend));
    }
    let config = ServerConfig {
        port: opts.port,
        shards: opts.shards,
        max_conns: opts.conns,
        shard: shard_cfg,
    };
    let server = Server::start(&config, backends, fresh).map_err(CliError::State)?;
    println!(
        "dcode-server listening on 127.0.0.1:{} ({} shard(s) × {} p={}, {} stripes × {}-byte blocks, {}; queue cap {}, {} connection slot(s))",
        server.port(),
        opts.shards,
        opts.code.name(),
        opts.p,
        opts.stripes,
        opts.block,
        if fresh { "formatted fresh" } else { "re-attached" },
        opts.queue_cap,
        opts.conns,
    );
    // CI greps this line through a pipe; don't leave it in the buffer.
    use std::io::Write;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// Options for the `loadgen` command.
pub struct LoadgenOpts {
    /// Server host.
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Total operations across all connections.
    pub ops: u64,
    /// Concurrent connections.
    pub conns: usize,
    /// PUT value size, bytes.
    pub value: usize,
    /// Distinct keys per connection.
    pub keys: usize,
    /// Fraction of ops that are PUTs.
    pub put_fraction: f64,
    /// Offered load, ops/s (0 = closed loop).
    pub rate: u64,
    /// RNG seed.
    pub seed: u64,
    /// Where to write the JSON report.
    pub out: std::path::PathBuf,
}

/// `loadgen`: drive a running server with an open-loop workload, verify
/// every acknowledged write reads back, and write the latency report
/// (plus the server's own stat document) to a JSON file. Any lost ack or
/// mid-run mismatch is a hard failure (exit code 3).
pub fn loadgen(opts: &LoadgenOpts) -> Result<String, CliError> {
    use dcode_server::{Client, LoadgenConfig, Response};

    let cfg = LoadgenConfig {
        host: opts.host.clone(),
        port: opts.port,
        conns: opts.conns,
        ops: opts.ops,
        value_bytes: opts.value,
        keys_per_conn: opts.keys,
        put_fraction: opts.put_fraction,
        rate_ops_s: opts.rate,
        seed: opts.seed,
    };
    let report = dcode_server::loadgen::run(&cfg)?;
    let server_stat = Client::connect((opts.host.as_str(), opts.port))
        .and_then(|mut c| c.stat())
        .ok()
        .and_then(|resp| match resp {
            Response::Report(json) => Some(json),
            _ => None,
        });
    std::fs::write(&opts.out, report.to_json(&cfg, server_stat.as_deref()))?;
    // p999 is unresolvable below 1000 samples; the report carries null
    // and the summary shows a dash.
    let p999 = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |us| us.to_string());
    let summary = format!(
        "{} ops in {:.2}s ({:.0} ops/s) · put p50/p99/p999 {}/{}/{}µs · get p50/p99/p999 {}/{}/{}µs\n\
         busy retries {} · errors {} · mismatches {} · verified {} acked key(s), {} lost\n\
         report written to {}",
        report.ops,
        report.elapsed_s,
        report.achieved_ops_s,
        report.put_us.p50,
        report.put_us.p99,
        p999(report.put_us.p999),
        report.get_us.p50,
        report.get_us.p99,
        p999(report.get_us.p999),
        report.busy_retries,
        report.errors,
        report.mismatches,
        report.verify_checked,
        report.verify_lost,
        opts.out.display(),
    );
    if report.verify_lost > 0 || report.mismatches > 0 {
        return Err(CliError::State(format!(
            "{summary}\nDATA LOSS: acknowledged writes did not read back"
        )));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, PathBuf, Vec<u8>) {
        let root = std::env::temp_dir().join(format!("dcode-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let input = root.join("input.bin");
        let payload: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        std::fs::write(&input, &payload).unwrap();
        (root.clone(), input, payload)
    }

    #[test]
    fn store_kill_two_fetch_rebuild() {
        let (root, input, payload) = setup("e2e");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 7, 1024).unwrap();
        assert!(status(&dir).unwrap().contains("all 7 healthy"));

        kill(&dir, 1).unwrap();
        kill(&dir, 5).unwrap();
        assert!(status(&dir).unwrap().contains("DEAD: [1, 5]"));

        // Fetch still works through two dead disks.
        let out = root.join("out.bin");
        let msg = fetch(&dir, &out).unwrap();
        assert!(msg.contains("reconstructed through 2"));
        assert_eq!(std::fs::read(&out).unwrap(), payload);

        // Rebuild restores the files; array is healthy and consistent again.
        rebuild(&dir).unwrap();
        assert!(status(&dir).unwrap().contains("all 7 healthy"));
        fetch(&dir, &out).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), payload);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn loadgen_against_an_in_process_server_is_lossless() {
        use dcode_server::{Server, ServerConfig, ShardBackend, ShardConfig};
        let (root, _input, _payload) = setup("loadgen");
        let config = ServerConfig {
            shards: 2,
            max_conns: 8,
            shard: ShardConfig {
                block_size: 64,
                stripes: 16,
                meta_elements: 4,
                ..ShardConfig::default()
            },
            ..ServerConfig::default()
        };
        let backends: Vec<ShardBackend> = (0..2)
            .map(|_| {
                Box::new(dcode_faults::MemBackend::new(
                    config.shard.layout.disks(),
                    dcode_server::shard_blocks(&config.shard),
                    config.shard.block_size,
                )) as ShardBackend
            })
            .collect();
        let server = Server::start(&config, backends, true).unwrap();
        let out = root.join("BENCH_server.json");
        let opts = LoadgenOpts {
            host: "127.0.0.1".into(),
            port: server.port(),
            ops: 400,
            conns: 2,
            value: 200,
            keys: 8,
            put_fraction: 0.5,
            rate: 0,
            seed: 7,
            out: out.clone(),
        };
        let summary = loadgen(&opts).unwrap();
        assert!(summary.contains("0 lost"), "{summary}");
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"verify_lost\":0"), "{json}");
        assert!(json.contains("\"server_stat\":{"), "{json}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn three_dead_disks_is_data_loss() {
        let (root, input, _) = setup("loss");
        let dir = root.join("array");
        store(&input, &dir, CodeId::XCode, 5, 512).unwrap();
        for d in [0, 2, 4] {
            kill(&dir, d).unwrap();
        }
        let out = root.join("out.bin");
        assert!(matches!(fetch(&dir, &out), Err(CliError::State(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scrub_repairs_flipped_bits() {
        let (root, input, payload) = setup("scrub");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 512).unwrap();

        // Flip a byte in the middle of disk 2's file (silent corruption).
        let dpath = crate::diskio::disk_path(&dir, 2);
        let mut bytes = std::fs::read(&dpath).unwrap();
        bytes[700] ^= 0x55;
        std::fs::write(&dpath, &bytes).unwrap();

        let report = scrub(&dir, true).unwrap();
        assert!(report.contains("repaired"), "{report}");
        let out = root.join("out.bin");
        fetch(&dir, &out).unwrap();
        assert_eq!(std::fs::read(&out).unwrap(), payload);
        // Second scrub: everything clean.
        assert!(!scrub(&dir, true).unwrap().contains("repaired"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn layout_command_renders_every_code() {
        for code in [CodeId::DCode, CodeId::Rdp, CodeId::Hdp, CodeId::PCode] {
            let out = layout(code, 7).unwrap();
            assert!(out.contains(code.name()), "{}", code.name());
            assert!(out.contains("XOR/element"));
            assert!(out.contains("prime = 7"));
        }
        // Non-prime rejected with a usage error.
        assert!(matches!(layout(CodeId::DCode, 9), Err(CliError::Usage(_))));
    }

    #[test]
    fn verify_command_proves_single_code_and_rejects_bad_input() {
        let out = verify(Some(CodeId::DCode), Some(7), false).unwrap();
        assert!(out.contains("D-Code p=7"), "{out}");
        assert!(out.contains("verified"), "{out}");
        // No code and no --all is a usage error; non-prime p fails to build.
        assert!(matches!(verify(None, None, false), Err(CliError::Usage(_))));
        assert!(matches!(
            verify(Some(CodeId::DCode), Some(9), false),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_command_checks_claims_and_rejects_bad_input() {
        let out = analyze(Some(CodeId::DCode), Some(7), false, true, false, false).unwrap();
        assert!(out.contains("D-Code p=7"), "{out}");
        assert!(out.contains("verdict:  clean"), "{out}");
        assert!(out.contains("encode XORs per data element"), "{out}");
        assert!(out.contains("1 report(s): 1 clean, 0 not clean"), "{out}");
        // JSON mode: one object per report, machine-checkable fields.
        let json = analyze(Some(CodeId::Rdp), Some(7), false, true, true, false).unwrap();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"write_lf\": \"inf\""), "{json}");
        // No code and no --all is a usage error; non-prime p fails to build.
        assert!(matches!(
            analyze(None, None, false, false, false, false),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            analyze(Some(CodeId::DCode), Some(9), false, false, false, false),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn analyze_opt_delta_certifies_the_pipeline() {
        let out = analyze(Some(CodeId::DCode), Some(5), false, false, false, true).unwrap();
        assert!(out.contains("opt-delta (pipeline"), "{out}");
        assert!(out.contains("verdict:  certified"), "{out}");
        assert!(out.contains("1 certified, 0 violated"), "{out}");
        let json = analyze(Some(CodeId::DCode), Some(5), false, false, true, true).unwrap();
        assert!(json.contains("\"opt_delta\""), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
    }

    #[test]
    fn status_reports_schedule_cache_counters() {
        let (root, input, _) = setup("cachestats");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 512).unwrap();
        let out = status(&dir).unwrap();
        assert!(out.contains("schedule cache:"), "{out}");
        assert!(out.contains("miss(es) (this process)"), "{out}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn operations_on_missing_arrays_fail_cleanly() {
        let missing = std::env::temp_dir().join("dcode-definitely-not-here");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(matches!(status(&missing), Err(CliError::Meta(_))));
        assert!(matches!(rebuild(&missing), Err(CliError::Meta(_))));
        assert!(matches!(kill(&missing, 0), Err(CliError::Meta(_))));
        let out = missing.join("x.bin");
        assert!(matches!(fetch(&missing, &out), Err(CliError::Meta(_))));
    }

    #[test]
    fn kill_rejects_out_of_range_and_double_kill() {
        let (root, input, _) = setup("killerr");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 256).unwrap();
        assert!(matches!(kill(&dir, 99), Err(CliError::Usage(_))));
        kill(&dir, 1).unwrap();
        assert!(matches!(kill(&dir, 1), Err(CliError::State(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scrub_requires_all_disks() {
        let (root, input, _) = setup("scrubdeg");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 256).unwrap();
        kill(&dir, 0).unwrap();
        assert!(matches!(scrub(&dir, true), Err(CliError::State(_))));
        rebuild(&dir).unwrap();
        assert!(scrub(&dir, true).unwrap().contains("clean"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn status_diagnoses_truncated_and_missing_disks() {
        let (root, input, _) = setup("probe");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 512).unwrap();
        // Truncate one disk mid-file, delete another.
        let d1 = crate::diskio::disk_path(&dir, 1);
        let bytes = std::fs::read(&d1).unwrap();
        std::fs::write(&d1, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::remove_file(crate::diskio::disk_path(&dir, 3)).unwrap();

        let out = status(&dir).unwrap();
        assert!(out.contains("DEAD: [1, 3]"), "{out}");
        assert!(out.contains("disk 1: TRUNCATED"), "{out}");
        assert!(out.contains("disk 3: missing"), "{out}");
        assert!(out.contains("disk 0: ok"), "{out}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scrub_dry_run_reports_without_writing() {
        let (root, input, _) = setup("scrubdry");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 512).unwrap();
        let dpath = crate::diskio::disk_path(&dir, 2);
        let mut bytes = std::fs::read(&dpath).unwrap();
        bytes[700] ^= 0x55;
        std::fs::write(&dpath, &bytes).unwrap();

        // Dry run: corruption found is exit code 5, and nothing changes.
        let err = scrub(&dir, false).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("would repair"), "{err}");
        assert_eq!(std::fs::read(&dpath).unwrap(), bytes, "dry run wrote!");

        // Repairing run fixes it; a second dry run is clean (exit 0).
        scrub(&dir, true).unwrap();
        assert!(scrub(&dir, false).unwrap().contains("clean"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scrub_ambiguous_corruption_is_a_distinct_error() {
        let (root, input, _) = setup("scrubamb");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 512).unwrap();
        // Corrupt three cells of stripe 0 in distinct columns — beyond
        // pair localization.
        for d in [0, 2, 4] {
            let dpath = crate::diskio::disk_path(&dir, d);
            let mut bytes = std::fs::read(&dpath).unwrap();
            bytes[10 + d] ^= 0xFF;
            std::fs::write(&dpath, &bytes).unwrap();
        }
        let err = scrub(&dir, true).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("multi-element"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn exit_codes_are_distinct_per_failure_class() {
        assert_eq!(CliError::Io(std::io::Error::other("x")).exit_code(), 1);
        assert_eq!(CliError::Usage("u".into()).exit_code(), 2);
        assert_eq!(CliError::State("s".into()).exit_code(), 3);
        assert_eq!(CliError::Ambiguous("a".into()).exit_code(), 4);
        assert_eq!(CliError::Corrupt("c".into()).exit_code(), 5);
    }

    #[test]
    fn status_reports_journal_region_and_scan() {
        let (root, input, _) = setup("journalstat");
        let dir = root.join("array");
        store(&input, &dir, CodeId::DCode, 5, 512).unwrap();
        let out = status(&dir).unwrap();
        assert!(
            out.contains("journal:") && out.contains("block(s)/disk"),
            "{out}"
        );
        assert!(out.contains("0 live"), "{out}");
        assert!(out.contains("never mounted"), "{out}");
        // With a dead disk the scan is skipped but the region is reported.
        kill(&dir, 1).unwrap();
        let out = status(&dir).unwrap();
        assert!(out.contains("not scanned: dead disks"), "{out}");
        // Rebuild restores the geometry, journal tail included.
        rebuild(&dir).unwrap();
        assert!(status(&dir).unwrap().contains("0 live"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_sim_default_sweep_is_clean() {
        let out = crash_sim(1, false, false, false).unwrap();
        assert!(out.contains("crash sweep clean"), "{out}");
        assert!(out.contains("D-Code p=5"), "{out}");
        let json = crash_sim(1, false, true, false).unwrap();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"passed\":true"), "{json}");
    }

    #[test]
    fn crash_sim_mutated_catches_the_planted_hole() {
        let out = crash_sim(2, false, false, true).unwrap();
        assert!(out.contains("caught the planted write hole"), "{out}");
        assert!(out.contains("crashed at write"), "{out}");
    }

    #[test]
    fn chaos_smoke_single_code() {
        let out = chaos(1, 400, Some((CodeId::DCode, 5))).unwrap();
        assert!(out.contains("chaos soak passed"), "{out}");
        assert!(out.contains("checksum catches"), "{out}");
        assert!(out.contains("rebuilds completed"), "{out}");
        // Too few ops to fit the schedule is a usage error.
        assert!(matches!(chaos(1, 50, None), Err(CliError::Usage(_))));
    }

    #[test]
    fn every_code_stores_and_fetches() {
        let (root, input, payload) = setup("codes");
        for (i, code) in [
            CodeId::DCode,
            CodeId::XCode,
            CodeId::Rdp,
            CodeId::HCode,
            CodeId::Hdp,
            CodeId::EvenOdd,
            CodeId::PCode,
        ]
        .into_iter()
        .enumerate()
        {
            let dir = root.join(format!("array{i}"));
            store(&input, &dir, code, 7, 256).unwrap();
            kill(&dir, 3).unwrap();
            let out = root.join(format!("out{i}.bin"));
            fetch(&dir, &out).unwrap();
            assert_eq!(std::fs::read(&out).unwrap(), payload, "{}", code.name());
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
