//! Array metadata: a small text file (`meta.txt`) describing how a payload
//! was striped across the disk files.

use dcode_baselines::registry::CodeId;
use std::fmt;
use std::path::Path;

/// Persistent description of one on-disk array.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayMeta {
    /// Which code stripes the data.
    pub code: CodeId,
    /// The code's prime parameter.
    pub p: usize,
    /// Element block size in bytes.
    pub block: usize,
    /// Number of stripes.
    pub stripes: usize,
    /// Exact byte length of the stored payload (the tail block is padded).
    pub payload_len: usize,
    /// Blocks per disk reserved past the stripes for the parity-intent
    /// journal region (0 = none, e.g. arrays from before journaling or
    /// blocks too small to hold a record header).
    pub journal: usize,
}

/// Errors loading or parsing metadata.
#[derive(Debug)]
pub enum MetaError {
    /// I/O problem reading or writing `meta.txt`.
    Io(std::io::Error),
    /// The file exists but a field is missing or malformed.
    Malformed(String),
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::Io(e) => write!(f, "metadata I/O error: {e}"),
            MetaError::Malformed(what) => write!(f, "malformed meta.txt: {what}"),
        }
    }
}

impl std::error::Error for MetaError {}

impl From<std::io::Error> for MetaError {
    fn from(e: std::io::Error) -> Self {
        MetaError::Io(e)
    }
}

fn code_by_name(name: &str) -> Option<CodeId> {
    match name.to_ascii_lowercase().as_str() {
        "dcode" | "d-code" => Some(CodeId::DCode),
        "xcode" | "x-code" => Some(CodeId::XCode),
        "rdp" => Some(CodeId::Rdp),
        "hcode" | "h-code" => Some(CodeId::HCode),
        "hdp" => Some(CodeId::Hdp),
        "evenodd" => Some(CodeId::EvenOdd),
        "pcode" | "p-code" => Some(CodeId::PCode),
        _ => None,
    }
}

/// Parse a user-facing code name (`dcode`, `rdp`, `x-code`, …).
pub fn parse_code(name: &str) -> Result<CodeId, String> {
    code_by_name(name).ok_or_else(|| {
        format!("unknown code '{name}' (try dcode, xcode, rdp, hcode, hdp, evenodd, pcode)")
    })
}

impl ArrayMeta {
    /// Serialize to the `meta.txt` format.
    pub fn to_text(&self) -> String {
        format!(
            "code={}\np={}\nblock={}\nstripes={}\npayload_len={}\njournal={}\n",
            self.code.name(),
            self.p,
            self.block,
            self.stripes,
            self.payload_len,
            self.journal
        )
    }

    /// Parse from the `meta.txt` format.
    pub fn from_text(text: &str) -> Result<Self, MetaError> {
        let mut code = None;
        let mut p = None;
        let mut block = None;
        let mut stripes = None;
        let mut payload_len = None;
        let mut journal = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| MetaError::Malformed(format!("line '{line}'")))?;
            let bad = |f: &str| MetaError::Malformed(format!("field '{f}' = '{v}'"));
            match k {
                "code" => {
                    code = Some(code_by_name(v).ok_or_else(|| bad("code"))?);
                }
                "p" => p = Some(v.parse().map_err(|_| bad("p"))?),
                "block" => block = Some(v.parse().map_err(|_| bad("block"))?),
                "stripes" => stripes = Some(v.parse().map_err(|_| bad("stripes"))?),
                "payload_len" => payload_len = Some(v.parse().map_err(|_| bad("payload_len"))?),
                "journal" => journal = Some(v.parse().map_err(|_| bad("journal"))?),
                other => return Err(MetaError::Malformed(format!("unknown field '{other}'"))),
            }
        }
        fn need<T>(o: Option<T>, f: &str) -> Result<T, MetaError> {
            o.ok_or_else(|| MetaError::Malformed(format!("missing '{f}'")))
        }
        Ok(ArrayMeta {
            code: need(code, "code")?,
            p: need(p, "p")?,
            block: need(block, "block")?,
            stripes: need(stripes, "stripes")?,
            payload_len: need(payload_len, "payload_len")?,
            // Absent in meta files written before journaling existed:
            // those arrays simply have no journal region.
            journal: journal.unwrap_or(0),
        })
    }

    /// Load from `<dir>/meta.txt`.
    pub fn load(dir: &Path) -> Result<Self, MetaError> {
        let text = std::fs::read_to_string(dir.join("meta.txt"))?;
        Self::from_text(&text)
    }

    /// Save to `<dir>/meta.txt`.
    pub fn save(&self, dir: &Path) -> Result<(), MetaError> {
        std::fs::write(dir.join("meta.txt"), self.to_text())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = ArrayMeta {
            code: CodeId::DCode,
            p: 7,
            block: 4096,
            stripes: 3,
            payload_len: 123456,
            journal: 9,
        };
        let parsed = ArrayMeta::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn meta_without_journal_field_defaults_to_zero() {
        // Files written before journaling existed lack the field.
        let parsed =
            ArrayMeta::from_text("code=dcode\np=7\nblock=64\nstripes=2\npayload_len=100\n")
                .unwrap();
        assert_eq!(parsed.journal, 0);
    }

    #[test]
    fn parse_code_aliases() {
        assert_eq!(parse_code("D-Code").unwrap(), CodeId::DCode);
        assert_eq!(parse_code("rdp").unwrap(), CodeId::Rdp);
        assert!(parse_code("raidz").is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(ArrayMeta::from_text("code=dcode\np=7\n").is_err());
        assert!(ArrayMeta::from_text("nonsense").is_err());
        assert!(
            ArrayMeta::from_text("code=zzz\np=7\nblock=1\nstripes=1\npayload_len=0\n").is_err()
        );
    }
}
