//! `dcode` — stripe files across directory-backed "disks" with any RAID-6
//! code in the workspace, kill disks, fetch through failures, rebuild,
//! scrub silent corruption, and chaos-soak the resilience machinery.
//!
//! ```text
//! dcode store <file> <array-dir> [--code dcode] [--p 7] [--block 4096]
//! dcode fetch <array-dir> <output-file>
//! dcode status <array-dir>
//! dcode kill <array-dir> <disk>
//! dcode rebuild <array-dir>
//! dcode scrub <array-dir> [--repair on|off]
//! dcode chaos --seed N --ops M [--code NAME --p N]
//! dcode crash-sim [--seed N] [--all] [--json] [--mutate]
//! dcode serve <array-dir> [--shards N] [--port P]
//! dcode loadgen <host:port> [--ops N] [--out FILE]
//! ```
//!
//! Exit codes: 0 success, 1 I/O or metadata, 2 usage, 3 array state,
//! 4 ambiguous (unlocalizable) corruption, 5 corruption found by a
//! dry-run scrub.

mod commands;
mod diskio;
mod meta;

use commands::CliError;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "dcode — RAID-6 file archival over directory-backed disks

USAGE:
  dcode store <file> <array-dir> [--code NAME] [--p N] [--block BYTES]
  dcode fetch <array-dir> <output-file>
  dcode status <array-dir>
  dcode kill <array-dir> <disk-index>
  dcode rebuild <array-dir>
  dcode scrub <array-dir> [--repair on|off]   # off = dry run, exit 5 if corrupt
  dcode chaos [--seed N] [--ops M] [--code NAME --p N]
                                       # seeded fault-injection soak (exit 3 on loss)
  dcode crash-sim [--seed N] [--all] [--json] [--mutate]
                                       # exhaustive write-hole crash sweep: every
                                       # write-path op crashed at every write index,
                                       # remounted, verified (exit 3 on loss);
                                       # --all sweeps dcode/rdp/evenodd at p in {5,7};
                                       # --mutate plants a journal-ordering bug the
                                       # sweep must catch (harness self-test)
  dcode layout <code-name> [--p N]     # print a code's layout and spec
  dcode verify [--code NAME] [--p N]   # statically verify compiled schedules
  dcode verify --all                   # …for every code at p in {5,7,11,13,17}
  dcode analyze [--code NAME] [--p N] [--assert-claims] [--json] [--opt-delta]
                                       # static cost/IO/parallelism analysis of
                                       # compiled schedules vs the paper's claims;
                                       # --opt-delta adds per-scope optimizer
                                       # cost-delta certificates (registry codes
                                       # must certify delta = 0; any violated
                                       # certificate exits 3 even without
                                       # --assert-claims)
  dcode analyze --all                  # …for every code at p in {5,7,11,13,17}
  dcode race [--all] [--json]          # model-check the pool/cache/shard
                                       # concurrency invariants (+ mutation
                                       # self-tests + lock-order discipline);
                                       # --all explores the deep interleaving
                                       # budget (exit 3 on violation)
  dcode serve <array-dir> [--shards N] [--port P] [--code NAME] [--p N]
              [--block BYTES] [--stripes N] [--queue-cap N] [--conns N]
                                       # sharded TCP object server over
                                       # file-backed RAID-6 arrays; runs
                                       # until killed
  dcode loadgen <host:port> [--ops N] [--conns N] [--value BYTES] [--keys N]
              [--puts FRACTION] [--rate OPS_PER_S] [--seed N] [--out FILE]
                                       # open-loop load + acked-write
                                       # verification; JSON report to
                                       # FILE (exit 3 on any lost ack)

CODES: dcode (default), xcode, rdp, hcode, hdp, evenodd, pcode
DEFAULTS: --p 7, --block 4096, --repair on, --seed 1, --ops 5000 (chaos)
  serve: --shards 4, --port 4650, --stripes 64, --queue-cap 128, --conns 32
  loadgen: --ops 100000, --conns 8, --value 1024, --keys 64, --puts 0.5,
           --rate 0 (closed loop), --out BENCH_server.json
EXIT CODES: 0 ok · 1 I/O-or-metadata · 2 usage · 3 array state ·
            4 ambiguous corruption · 5 dry-run found corruption";

fn run() -> Result<String, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n\n{USAGE}"));
    let Some(cmd) = args.first() else {
        return Err(usage("missing command"));
    };

    // Split positionals from --flags.
    let mut positional: Vec<&String> = Vec::new();
    let mut flags: Vec<(&str, &str)> = Vec::new();
    let mut i = 1;
    let mut all = false;
    let mut assert_claims = false;
    let mut json = false;
    let mut mutate = false;
    let mut opt_delta = false;
    while i < args.len() {
        // Boolean flags take no value; everything else under `--` does.
        if args[i] == "--all" {
            all = true;
            i += 1;
        } else if args[i] == "--assert-claims" {
            assert_claims = true;
            i += 1;
        } else if args[i] == "--json" {
            json = true;
            i += 1;
        } else if args[i] == "--mutate" {
            mutate = true;
            i += 1;
        } else if args[i] == "--opt-delta" {
            opt_delta = true;
            i += 1;
        } else if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| usage(&format!("flag --{name} needs a value")))?;
            flags.push((name, value));
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let flag = |name: &str| flags.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);

    match cmd.as_str() {
        "store" => {
            let [file, dir] = positional.as_slice() else {
                return Err(usage("store needs <file> <array-dir>"));
            };
            let code = meta::parse_code(flag("code").unwrap_or("dcode")).map_err(|e| usage(&e))?;
            let p: usize = flag("p")
                .unwrap_or("7")
                .parse()
                .map_err(|_| usage("--p must be a prime number"))?;
            let block: usize = flag("block")
                .unwrap_or("4096")
                .parse()
                .map_err(|_| usage("--block must be a byte count"))?;
            commands::store(&PathBuf::from(file), &PathBuf::from(dir), code, p, block)
        }
        "fetch" => {
            let [dir, out] = positional.as_slice() else {
                return Err(usage("fetch needs <array-dir> <output-file>"));
            };
            commands::fetch(&PathBuf::from(dir), &PathBuf::from(out))
        }
        "status" => {
            let [dir] = positional.as_slice() else {
                return Err(usage("status needs <array-dir>"));
            };
            commands::status(&PathBuf::from(dir))
        }
        "kill" => {
            let [dir, disk] = positional.as_slice() else {
                return Err(usage("kill needs <array-dir> <disk-index>"));
            };
            let disk: usize = disk
                .parse()
                .map_err(|_| usage("disk index must be a number"))?;
            commands::kill(&PathBuf::from(dir), disk)
        }
        "rebuild" => {
            let [dir] = positional.as_slice() else {
                return Err(usage("rebuild needs <array-dir>"));
            };
            commands::rebuild(&PathBuf::from(dir))
        }
        "scrub" => {
            let [dir] = positional.as_slice() else {
                return Err(usage("scrub needs <array-dir>"));
            };
            let repair = match flag("repair").unwrap_or("on") {
                "on" => true,
                "off" => false,
                other => return Err(usage(&format!("--repair must be on|off, got '{other}'"))),
            };
            commands::scrub(&PathBuf::from(dir), repair)
        }
        "chaos" => {
            if !positional.is_empty() {
                return Err(usage("chaos takes only --seed/--ops/--code/--p flags"));
            }
            let seed: u64 = flag("seed")
                .unwrap_or("1")
                .parse()
                .map_err(|_| usage("--seed must be a number"))?;
            let ops: usize = flag("ops")
                .unwrap_or("5000")
                .parse()
                .map_err(|_| usage("--ops must be a number"))?;
            let target = flag("code")
                .map(|name| {
                    let code = meta::parse_code(name).map_err(|e| usage(&e))?;
                    let p: usize = flag("p")
                        .unwrap_or("7")
                        .parse()
                        .map_err(|_| usage("--p must be a prime number"))?;
                    Ok::<_, CliError>((code, p))
                })
                .transpose()?;
            commands::chaos(seed, ops, target)
        }
        "crash-sim" => {
            if !positional.is_empty() {
                return Err(usage(
                    "crash-sim takes only --seed/--all/--json/--mutate flags",
                ));
            }
            let seed: u64 = flag("seed")
                .unwrap_or("1")
                .parse()
                .map_err(|_| usage("--seed must be a number"))?;
            commands::crash_sim(seed, all, json, mutate)
        }
        "layout" => {
            let [code_name] = positional.as_slice() else {
                return Err(usage("layout needs <code-name>"));
            };
            let code = meta::parse_code(code_name).map_err(|e| usage(&e))?;
            let p: usize = flag("p")
                .unwrap_or("7")
                .parse()
                .map_err(|_| usage("--p must be a prime number"))?;
            commands::layout(code, p)
        }
        "verify" => {
            if !positional.is_empty() {
                return Err(usage("verify takes only --code/--p/--all flags"));
            }
            let code = flag("code")
                .map(|name| meta::parse_code(name).map_err(|e| usage(&e)))
                .transpose()?;
            let p = flag("p")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| usage("--p must be a prime number"))
                })
                .transpose()?;
            commands::verify(code, p, all)
        }
        "analyze" => {
            if !positional.is_empty() {
                return Err(usage(
                    "analyze takes only --code/--p/--all/--assert-claims/--json/--opt-delta flags",
                ));
            }
            let code = flag("code")
                .map(|name| meta::parse_code(name).map_err(|e| usage(&e)))
                .transpose()?;
            let p = flag("p")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| usage("--p must be a prime number"))
                })
                .transpose()?;
            commands::analyze(code, p, all, assert_claims, json, opt_delta)
        }
        "race" => {
            if !positional.is_empty() {
                return Err(usage("race takes only --all/--json flags"));
            }
            commands::race(all, json)
        }
        "serve" => {
            let [dir] = positional.as_slice() else {
                return Err(usage("serve needs <array-dir>"));
            };
            let code = meta::parse_code(flag("code").unwrap_or("dcode")).map_err(|e| usage(&e))?;
            let num = |name: &str, default: &str| -> Result<usize, CliError> {
                flag(name)
                    .unwrap_or(default)
                    .parse()
                    .map_err(|_| usage(&format!("--{name} must be a number")))
            };
            let port: u16 = flag("port")
                .unwrap_or("4650")
                .parse()
                .map_err(|_| usage("--port must be a TCP port"))?;
            let opts = commands::ServeOpts {
                code,
                p: num("p", "7")?,
                shards: num("shards", "4")?,
                port,
                block: num("block", "4096")?,
                stripes: num("stripes", "64")?,
                queue_cap: num("queue-cap", "128")?,
                conns: num("conns", "32")?,
            };
            commands::serve(&PathBuf::from(dir), &opts)
        }
        "loadgen" => {
            let [addr] = positional.as_slice() else {
                return Err(usage("loadgen needs <host:port>"));
            };
            let (host, port) = addr
                .rsplit_once(':')
                .and_then(|(h, p)| p.parse::<u16>().ok().map(|p| (h.to_string(), p)))
                .ok_or_else(|| usage("loadgen target must be host:port"))?;
            let num = |name: &str, default: &str| -> Result<u64, CliError> {
                flag(name)
                    .unwrap_or(default)
                    .parse()
                    .map_err(|_| usage(&format!("--{name} must be a number")))
            };
            let puts: f64 = flag("puts")
                .unwrap_or("0.5")
                .parse()
                .ok()
                .filter(|f| (0.0..=1.0).contains(f))
                .ok_or_else(|| usage("--puts must be a fraction in [0, 1]"))?;
            let opts = commands::LoadgenOpts {
                host,
                port,
                ops: num("ops", "100000")?,
                conns: num("conns", "8")? as usize,
                value: num("value", "1024")? as usize,
                keys: num("keys", "64")? as usize,
                put_fraction: puts,
                rate: num("rate", "0")?,
                seed: num("seed", "1")?,
                out: PathBuf::from(flag("out").unwrap_or("BENCH_server.json")),
            };
            commands::loadgen(&opts)
        }
        other => Err(usage(&format!("unknown command '{other}'"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
