#![warn(missing_docs)]
//! # dcode — a reproduction of the D-Code RAID-6 array code
//!
//! Facade crate for the full reproduction of *Fu & Shu, "D-Code: An
//! Efficient RAID-6 Code to Optimize I/O Loads and Read Performance",
//! IEEE IPDPS 2015*. Each member crate is re-exported under a short name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dcode-core` | grids, equations, layouts, peeling decoder, MDS checker, metrics, the D-Code constructions |
//! | [`baselines`] | `dcode-baselines` | RDP, EVENODD, X-Code, H-Code, HDP, and the code registry |
//! | [`codec`] | `dcode-codec` | byte-level encode/decode/update engine, GF(2) bit-matrix backend |
//! | [`iosim`] | `dcode-iosim` | `<S,L,T>` workloads, per-disk I/O accounting, LF/Cost metrics (Figures 4–5) |
//! | [`disksim`] | `dcode-disksim` | simulated Savvio-class disk array, read-speed experiments (Figures 6–7) |
//! | [`recovery`] | `dcode-recovery` | conventional vs hybrid single-disk rebuild optimization |
//! | [`mod@array`] | `dcode-array` | multi-stripe array: rotation, degraded service, rebuild, scrubbing, resilient backend-driven array, chaos soak |
//! | [`faults`] | `dcode-faults` | disk backends (memory, file), typed disk errors, CRC32, deterministic fault injection |
//! | [`verify`] | `dcode-verify` | symbolic GF(2) verifier, static race checker, and schedule linter for compiled XOR programs |
//! | [`analyze`] | `dcode-analyze` | static schedule analyzer: closed-form cost claims, per-disk I/O footprints, critical-path speedup bounds, peephole lints |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Thirty seconds of D-Code
//!
//! ```
//! use dcode::core::dcode::dcode;
//! use dcode::codec::{encode, recover_columns, Stripe};
//!
//! let code = dcode(7).unwrap();
//! let payload = vec![42u8; code.data_len() * 512];
//! let mut stripe = Stripe::from_data(&code, 512, &payload);
//! encode(&code, &mut stripe);
//! recover_columns(&code, &mut stripe, &[0, 4]).unwrap();
//! assert_eq!(stripe.data_bytes(&code), payload);
//! ```

pub use dcode_analyze as analyze;
pub use dcode_array as array;
pub use dcode_baselines as baselines;
pub use dcode_codec as codec;
pub use dcode_core as core;
pub use dcode_disksim as disksim;
pub use dcode_faults as faults;
pub use dcode_iosim as iosim;
pub use dcode_recovery as recovery;
pub use dcode_verify as verify;
